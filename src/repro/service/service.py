"""Reader/writer coordination and batched search execution for one engine.

The paper's paradigm is interactive — many users fire keyword queries and
refine against the top-k interpretations — so the serving shape is: *reads
vastly outnumber writes, both must coexist, and every read must be
consistent*.  The offline structures are mutated in place by the
:class:`~repro.maintenance.IndexManager`, so consistency is enforced by
**epoch coordination** rather than copy-on-write:

* **Reads** pin an :class:`~repro.core.snapshot.EngineSnapshot` under a
  shared read hold.  Acquiring the hold is one short critical section
  (bump a counter); the search itself runs lock-free against the pinned
  structures, concurrently with any number of other reads.
* **Writes** are serialized and exclusive.  The service registers epoch
  begin/commit hooks on the engine's ``IndexManager``, so *every* update
  batch — including one issued directly through
  ``engine.add_triples``/``remove_triples`` by code unaware of the
  service — drains active readers, applies under exclusion, and then
  readmits readers.  Writer preference keeps a steady read stream from
  starving updates.

:meth:`EngineService.search_many` fans a batch of queries over a bounded
worker pool **under one shared snapshot**, so its results are
byte-identical to sequential ``engine.search`` calls on that snapshot.
Admission control bounds the number of in-flight queries
(:class:`AdmissionError` = backpressure, HTTP 429), and per-query
deadlines expire queued work without running it (a Python search cannot be
preempted mid-flight; the deadline is checked at dispatch).
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from repro.core import kernels

log = logging.getLogger(__name__)

__all__ = [
    "AdmissionError",
    "BatchOutcome",
    "EngineService",
    "closed_loop_benchmark",
]


class AdmissionError(RuntimeError):
    """The service is at its in-flight query bound; retry later."""


class _ReadWriteLock:
    """Many readers / one writer, writer-preferring.

    ``acquire_read`` blocks while a writer is active *or waiting* — so a
    continuous stream of reads cannot starve updates — and is otherwise
    one counter bump.  ``acquire_write`` waits for active readers to
    drain.  Not reentrant in either direction.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Returns False iff ``timeout`` elapsed before admission."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer or self._writers_waiting:
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class BatchOutcome:
    """One query's fate inside a :meth:`EngineService.search_many` batch.

    ``status`` is ``"ok"`` (``result`` is the :class:`SearchResult`),
    ``"timeout"`` (the per-query deadline expired before the query was
    dispatched), or ``"error"`` (``error`` carries the exception).
    Outcomes are returned in input order.
    """

    __slots__ = ("index", "query", "status", "result", "error", "latency_seconds")

    def __init__(self, index, query, status, result=None, error=None, latency_seconds=0.0):
        self.index = index
        self.query = query
        self.status = status
        self.result = result
        self.error = error
        self.latency_seconds = latency_seconds

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __repr__(self):
        return (
            f"BatchOutcome(index={self.index}, status={self.status!r}, "
            f"latency_ms={1000 * self.latency_seconds:.2f})"
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sequence (0 on empty)."""
    if not sorted_values:
        return 0.0
    rank = int(q * (len(sorted_values) - 1) + 0.5)
    return sorted_values[rank]


class EngineService:
    """Snapshot-isolated concurrent serving over one :class:`KeywordSearchEngine`.

    Parameters
    ----------
    engine:
        The engine to serve.  The service registers epoch hooks on its
        ``IndexManager``; build **one** service per engine (a second
        registration would deadlock writes against itself).
    workers:
        Bounded worker-pool size for :meth:`search_many`.
    max_pending:
        Admission bound on concurrently in-flight queries across the whole
        service (single searches and batch members alike).  Work beyond it
        is rejected with :class:`AdmissionError` instead of queuing without
        bound.
    default_timeout:
        Default per-query deadline (seconds) for :meth:`search_many`;
        ``None`` means no deadline.
    max_queue_wait:
        Bound on the time a query may spend *waiting* — for the read
        lock (:meth:`search`) or in the pool queue (:meth:`search_many`)
        — separately from its execution time.  Under a cold CPU-bound
        burst the old combined deadline let dispatch debt stack behind
        the GIL: every queued query burned its whole deadline waiting,
        then ran anyway, blowing up p99 (the 4-client 492 ms cold wall in
        ``fig_serving``).  Beyond the bound a query is rejected as
        backpressure (:class:`AdmissionError` / batch ``timeout``
        outcome) **without executing**, and every wait is recorded in the
        ``queue_wait`` histogram surfaced by :meth:`stats`.  ``None``
        means waits are recorded but unbounded.
    latency_window:
        How many recent per-query latencies feed the p50/p99 stats.
    """

    def __init__(
        self,
        engine,
        workers: int = 4,
        max_pending: int = 64,
        default_timeout: Optional[float] = None,
        max_queue_wait: Optional[float] = None,
        latency_window: int = 2048,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.engine = engine
        self.workers = workers
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self.max_queue_wait = max_queue_wait
        self._rw = _ReadWriteLock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-search"
        )
        self._closed = False

        self._stats_lock = threading.Lock()
        self._epoch_at_begin = -1
        self._inflight = 0
        self._completed = 0
        self._errors = 0
        self._timeouts = 0
        self._rejected = 0
        self._updates = 0
        self._latencies: deque = deque(maxlen=latency_window)  # (end time, seconds)
        self._queue_waits: deque = deque(maxlen=latency_window)  # seconds
        self._started_at = time.monotonic()

        # Every update batch — whichever path issues it — excludes readers
        # for exactly the span of its mutations.
        engine.index_manager.add_epoch_hooks(
            begin=self._epoch_begin, commit=self._epoch_commit
        )

    # ------------------------------------------------------------------
    # Write path (serialized, exclusive)
    # ------------------------------------------------------------------

    def _epoch_begin(self, epoch: int) -> None:
        self._rw.acquire_write()
        # Safe unlocked: writes are serialized, so exactly one epoch is
        # between begin and commit at any time.
        self._epoch_at_begin = epoch

    def _epoch_commit(self, epoch: int) -> None:
        # Commit hooks run even for aborted/no-op batches (the lock must
        # be released); only a batch that advanced the epoch is an update.
        if epoch != self._epoch_at_begin:
            with self._stats_lock:
                self._updates += 1
        self._rw.release_write()

    def update(self, adds: Sequence = (), removes: Sequence = ()) -> Dict[str, int]:
        """Apply one atomic update batch (adds + removes, one epoch).

        Blocks until active readers drain, applies under exclusion, and
        returns the applied counts plus the new epoch/versions.
        """
        changed = self.engine.index_manager.apply_batch(adds=adds, removes=removes)
        return {
            "changed": changed,
            "epoch": self.engine.index_manager.epoch,
            "summary_version": self.engine.summary.snapshot_key,
            "index_version": self.engine.keyword_index.snapshot_key,
        }

    # ------------------------------------------------------------------
    # Read path (shared, lock-free against the pinned snapshot)
    # ------------------------------------------------------------------

    def _admit(self, count: int) -> None:
        with self._stats_lock:
            if self._inflight + count > self.max_pending:
                self._rejected += count
                raise AdmissionError(
                    f"{self._inflight} queries in flight + {count} admitted would "
                    f"exceed max_pending={self.max_pending}"
                )
            self._inflight += count

    def _release(self, count: int) -> None:
        with self._stats_lock:
            self._inflight -= count

    def _record(self, latency: float, status: str) -> None:
        with self._stats_lock:
            if status == "ok":
                self._completed += 1
                self._latencies.append((time.monotonic(), latency))
            elif status == "timeout":
                self._timeouts += 1
            else:
                self._errors += 1

    def _record_queue_wait(self, seconds: float) -> None:
        with self._stats_lock:
            self._queue_waits.append(seconds)

    def search(self, query, k=None, dmax=None, max_cursors=None):
        """One search under a fresh read hold; the concurrent-safe analogue
        of ``engine.search``.  Raises :class:`AdmissionError` at the
        in-flight bound, and — when ``max_queue_wait`` is set — when the
        read lock cannot be acquired within that bound (an update epoch,
        or writers queued behind readers, is hogging the engine)."""
        self._admit(1)
        try:
            started = time.monotonic()
            if not self._rw.acquire_read(timeout=self.max_queue_wait):
                with self._stats_lock:
                    self._rejected += 1
                raise AdmissionError(
                    f"read admission waited past max_queue_wait="
                    f"{self.max_queue_wait:.3f}s behind an update epoch"
                )
            self._record_queue_wait(time.monotonic() - started)
            try:
                snapshot = self.engine.snapshot()
                result = self.engine.search_on_snapshot(
                    snapshot, query, k=k, dmax=dmax, max_cursors=max_cursors
                )
            finally:
                self._rw.release_read()
            self._record(time.monotonic() - started, "ok")
            return result
        except AdmissionError:
            raise
        except Exception:
            self._record(0.0, "error")
            raise
        finally:
            self._release(1)

    def search_many(
        self,
        queries: Sequence,
        k=None,
        dmax=None,
        max_cursors=None,
        timeout: Optional[float] = None,
        shared_frontier: Optional[bool] = None,
    ) -> List[BatchOutcome]:
        """Run a batch of keyword queries over the worker pool, all against
        **one** pinned snapshot.

        The whole batch is admitted (or rejected) atomically; each query
        gets the deadline ``now + timeout`` (``default_timeout`` when
        ``None``) checked at dispatch.  Results are byte-identical to
        sequential ``engine.search`` calls on the same snapshot — the pool
        only changes wall-clock, never output.

        ``shared_frontier`` (default: auto — on for guided multi-query
        batches when the vectorized kernels are active) precomputes the
        batch's guided completion-bound tables in **one** fused relaxation
        pass over the shared snapshot before the per-query searches are
        dispatched; they then hit the substrate's bounds cache instead of
        each running their own sweeps.  Purely a cache prewarm: per-query
        results and diagnostics are unchanged.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        queries = list(queries)
        if not queries:
            return []
        if timeout is None:
            timeout = self.default_timeout
        self._admit(len(queries))
        try:
            self._rw.acquire_read()
            try:
                snapshot = self.engine.snapshot()
                if shared_frontier is None:
                    shared_frontier = (
                        len(queries) > 1
                        and snapshot.guided
                        and kernels.kernels_enabled()
                        and snapshot.use_vectorized is not False
                    )
                if shared_frontier:
                    try:
                        self.engine.prefuse_bounds_on_snapshot(snapshot, queries)
                    except Exception:  # prewarm only — never fail the batch
                        log.exception("shared-frontier bound prefuse failed")
                deadline = None if timeout is None else time.monotonic() + timeout
                # Dispatch in contiguous chunks — one pool task per worker,
                # not per query.  Submit/result handshakes cost tens of
                # microseconds each; on an 8-query batch of sub-millisecond
                # searches, per-query futures spent more time in executor
                # plumbing than the shared-frontier prewarm saved.  Deadline
                # and queue-wait checks still run per query inside the chunk.
                n_chunks = min(self.workers, len(queries))
                step = -(-len(queries) // n_chunks)
                futures = [
                    self._pool.submit(
                        self._run_chunk,
                        snapshot, lo, queries[lo:lo + step], k, dmax,
                        max_cursors, deadline, time.monotonic(),
                    )
                    for lo in range(0, len(queries), step)
                ]
                outcomes = [o for f in futures for o in f.result()]
            finally:
                self._rw.release_read()
        finally:
            self._release(len(queries))
        for outcome in outcomes:
            self._record(outcome.latency_seconds, outcome.status)
        return outcomes

    def _run_chunk(
        self, snapshot, base, chunk, k, dmax, max_cursors, deadline, submitted
    ):
        return [
            self._run_one(
                snapshot, base + j, query, k, dmax, max_cursors, deadline,
                submitted,
            )
            for j, query in enumerate(chunk)
        ]

    def _run_one(
        self, snapshot, index, query, k, dmax, max_cursors, deadline, submitted
    ):
        started = time.monotonic()
        # Time from submission to dispatch — pool-queue wait plus any
        # chunk siblings that ran first — is bounded separately from
        # execution so a cold burst sheds load instead of stacking
        # deadline debt behind the GIL.
        waited = started - submitted
        self._record_queue_wait(waited)
        if self.max_queue_wait is not None and waited > self.max_queue_wait:
            return BatchOutcome(index, query, "timeout")
        if deadline is not None and started >= deadline:
            return BatchOutcome(index, query, "timeout")
        try:
            result = self.engine.search_on_snapshot(
                snapshot, query, k=k, dmax=dmax, max_cursors=max_cursors
            )
        except Exception as exc:  # per-query isolation: one bad query
            return BatchOutcome(  # never poisons its batch siblings
                index, query, "error", error=exc,
                latency_seconds=time.monotonic() - started,
            )
        return BatchOutcome(
            index, query, "ok", result=result,
            latency_seconds=time.monotonic() - started,
        )

    def execute_ranked(self, query, rank: int = 1, limit: Optional[int] = 10):
        """Search, then run the rank-th candidate on the store — both under
        one read hold, so the answers come from the same epoch as the
        interpretation.  Returns ``(candidate, answers)``; candidate is
        ``None`` when the search has fewer than ``rank`` interpretations.
        """
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self._admit(1)
        try:
            started = time.monotonic()
            self._rw.acquire_read()
            try:
                snapshot = self.engine.snapshot()
                result = self.engine.search_on_snapshot(snapshot, query)
                if len(result.candidates) < rank:
                    return None, []
                candidate = result.candidates[rank - 1]
                answers = snapshot.evaluator.evaluate(candidate.query, limit=limit)
            finally:
                self._rw.release_read()
            self._record(time.monotonic() - started, "ok")
            return candidate, answers
        except Exception:
            self._record(0.0, "error")
            raise
        finally:
            self._release(1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Service-level counters: QPS, latency percentiles, admission and
        epoch state, and the engine's memo-layer hit rates."""
        now = time.monotonic()
        with self._stats_lock:
            records = list(self._latencies)
            queue_waits = sorted(self._queue_waits)
            completed = self._completed
            counters = {
                "completed": completed,
                "errors": self._errors,
                "timeouts": self._timeouts,
                "rejected": self._rejected,
                "updates": self._updates,
                "inflight": self._inflight,
            }
            uptime = now - self._started_at
        latencies = sorted(seconds for _, seconds in records)
        recent = [t for t, _ in records if t > now - 60.0]
        window = min(uptime, 60.0)
        engine = self.engine
        # Bundle provenance of a warm-started engine: which artifact this
        # process serves, at which saved epoch, and how many delta-log
        # epochs the load replayed on top.  Built engines report None.
        artifact = getattr(engine, "artifact", None)
        return {
            "artifact": dict(artifact) if artifact is not None else None,
            "service": {
                "workers": self.workers,
                "max_pending": self.max_pending,
                "uptime_seconds": uptime,
            },
            "queries": dict(
                counters,
                qps=(completed / uptime) if uptime > 0 else 0.0,
                recent_qps=(len(recent) / window) if window > 0 else 0.0,
                p50_ms=1000 * _percentile(latencies, 0.50),
                p99_ms=1000 * _percentile(latencies, 0.99),
                queue_wait_p50_ms=1000 * _percentile(queue_waits, 0.50),
                queue_wait_p99_ms=1000 * _percentile(queue_waits, 0.99),
                queue_wait_max_ms=1000 * (queue_waits[-1] if queue_waits else 0.0),
            ),
            "index_tier": getattr(engine, "index_tier", "memory"),
            "caches": engine.cache_stats(),
            "kernels": kernels.kernel_status(),
            "snapshot": {
                "epoch": engine.index_manager.epoch,
                "summary_version": engine.summary.snapshot_key,
                "index_version": engine.keyword_index.snapshot_key,
            },
            "data": {"triples": len(engine.graph)},
        }

    def close(self) -> None:
        """Shut the worker pool down.  The epoch hooks stay registered —
        direct engine updates remain serialized — but no further batches
        are accepted."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):
        return (
            f"EngineService(workers={self.workers}, "
            f"max_pending={self.max_pending}, engine={self.engine!r})"
        )


# ----------------------------------------------------------------------
# Closed-loop load generation (repro bench + benchmarks/test_fig_serving)
# ----------------------------------------------------------------------

def closed_loop_benchmark(
    service: EngineService,
    queries: Sequence[Union[str, Sequence[str]]],
    clients: int = 1,
    requests_per_client: int = 20,
) -> Dict[str, float]:
    """Closed-loop throughput: each client fires its next query the moment
    the previous one returns, round-robin over ``queries``.

    Returns QPS and latency percentiles measured at the clients (not the
    service's internal counters), so coordination overhead is included.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client(slot: int) -> None:
        barrier.wait()
        mine = latencies[slot]
        for i in range(requests_per_client):
            query = queries[(slot + i * clients) % len(queries)]
            started = time.monotonic()
            try:
                service.search(query)
            except Exception:
                errors[slot] += 1
                continue
            mine.append(time.monotonic() - started)

    threads = [
        threading.Thread(target=client, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.monotonic()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - started

    merged = sorted(x for chunk in latencies for x in chunk)
    return {
        "clients": clients,
        "completed": len(merged),
        "errors": sum(errors),
        "seconds": elapsed,
        "qps": (len(merged) / elapsed) if elapsed > 0 else 0.0,
        "p50_ms": 1000 * _percentile(merged, 0.50),
        "p99_ms": 1000 * _percentile(merged, 0.99),
    }
