"""Stdlib-only HTTP front end: the ``repro serve`` endpoints.

Four JSON endpoints over one :class:`~repro.service.EngineService`:

==========  ======  =====================================================
path        method  body / query parameters
==========  ======  =====================================================
/search     GET     ``q`` (keywords), optional ``k``, ``dmax``
/search     POST    ``{"q": "..."}`` or ``{"queries": [...]}`` (batch →
                    ``search_many`` under one snapshot), optional ``k``,
                    ``dmax``, ``timeout``
/execute    POST    ``{"q": "...", "rank": 1, "limit": 10}`` — search,
                    run the rank-th interpretation, return its answers
/update     POST    ``{"add": "<N-Triples>", "remove": "<N-Triples>"}`` —
                    one atomic epoch through incremental maintenance
/stats      GET     service counters, latency percentiles, cache rates
==========  ======  =====================================================

Error mapping: bad input → 400, unknown path → 404, admission bound → 429
(backpressure), anything else → 500.  The handler threads come from
``ThreadingHTTPServer``; concurrency control is entirely the service's —
the HTTP layer holds no state of its own.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.quality.signatures import answer_json_signature, query_signature
from repro.rdf.ntriples import parse_ntriples
from repro.service.service import AdmissionError, EngineService

__all__ = [
    "ReproServer",
    "answers_to_json",
    "candidate_to_json",
    "result_to_json",
]


# ----------------------------------------------------------------------
# JSON shapes
# ----------------------------------------------------------------------
#
# Each converter passes an already-JSON-shaped dict/list through
# unchanged: the multiprocess tier (repro.service.dispatch) serializes
# at the source — worker processes run result_to_json before the bytes
# cross the pipe — so the handler code below stays tier-agnostic.

def candidate_to_json(candidate) -> Dict[str, object]:
    if isinstance(candidate, dict):
        return candidate
    return {
        "rank": candidate.rank,
        "cost": candidate.cost,
        "query": str(candidate.query),
        # Renaming-invariant id; lets clients (and the quality harness's
        # endpoint seeding) refer to an interpretation stably across
        # serving tiers and engine versions.
        "signature": query_signature(candidate.query),
        "sparql": candidate.to_sparql(),
        "text": candidate.verbalize(),
    }


def result_to_json(result) -> Dict[str, object]:
    if isinstance(result, dict):
        return result
    return {
        "keywords": result.keywords,
        "ignored_keywords": result.ignored_keywords,
        "candidates": [candidate_to_json(c) for c in result.candidates],
        "timings_ms": {
            stage: 1000 * seconds for stage, seconds in result.timings.items()
        },
    }


def _outcome_to_json(outcome) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "index": outcome.index,
        "status": outcome.status,
        "latency_ms": 1000 * outcome.latency_seconds,
    }
    if outcome.ok:
        payload["result"] = result_to_json(outcome.result)
    elif outcome.error is not None:
        payload["error"] = str(outcome.error)
    return payload


def answers_to_json(answers) -> List[Dict[str, str]]:
    # Canonical (signature-sorted) order: the evaluator enumerates hash
    # sets, so raw answer order varies across index tiers, worker
    # processes, and hash seeds even though the answer set is identical.
    # Sorting here makes /execute payloads byte-comparable across tiers.
    if answers and isinstance(answers[0], dict):
        return sorted(answers, key=answer_json_signature)
    return sorted(
        (
            {str(var): term.n3() for var, term in zip(a.variables, a.values)}
            for a in answers
        ),
        key=answer_json_signature,
    )


# ----------------------------------------------------------------------
# Handler
# ----------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"

    @property
    def service(self) -> EngineService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler, *args) -> None:
        try:
            handler(*args)
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc)})
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:
        url = urlparse(self.path)
        if url.path == "/search":
            self._dispatch(self._get_search, parse_qs(url.query))
        elif url.path == "/stats":
            self._dispatch(lambda: self._send_json(200, self.service.stats()))
        else:
            self._send_json(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:
        url = urlparse(self.path)
        routes = {
            "/search": self._post_search,
            "/execute": self._post_execute,
            "/update": self._post_update,
        }
        handler = routes.get(url.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {url.path!r}"})
            return
        self._dispatch(handler)

    def _get_search(self, params: Dict[str, List[str]]) -> None:
        if "q" not in params:
            raise ValueError("missing query parameter 'q'")
        k = int(params["k"][0]) if "k" in params else None
        dmax = int(params["dmax"][0]) if "dmax" in params else None
        result = self.service.search(params["q"][0], k=k, dmax=dmax)
        self._send_json(200, result_to_json(result))

    def _post_search(self) -> None:
        body = self._read_json()
        # Coerce numeric knobs up front: a malformed value is the client's
        # mistake (400), not a server bug (500).
        k = int(body["k"]) if body.get("k") is not None else None
        dmax = int(body["dmax"]) if body.get("dmax") is not None else None
        timeout = float(body["timeout"]) if body.get("timeout") is not None else None
        if "queries" in body:
            queries = body["queries"]
            if not isinstance(queries, list):
                raise ValueError("'queries' must be a list")
            outcomes = self.service.search_many(
                queries, k=k, dmax=dmax, timeout=timeout
            )
            self._send_json(
                200, {"outcomes": [_outcome_to_json(o) for o in outcomes]}
            )
            return
        if "q" not in body:
            raise ValueError("provide 'q' (one query) or 'queries' (a batch)")
        result = self.service.search(body["q"], k=k, dmax=dmax)
        self._send_json(200, result_to_json(result))

    def _post_execute(self) -> None:
        body = self._read_json()
        if "q" not in body:
            raise ValueError("missing 'q'")
        candidate, answers = self.service.execute_ranked(
            body["q"],
            rank=int(body.get("rank", 1)),
            limit=int(body.get("limit", 10)),
        )
        if candidate is None:
            self._send_json(404, {"error": "no interpretation at that rank"})
            return
        self._send_json(
            200,
            {
                "candidate": candidate_to_json(candidate),
                "answers": answers_to_json(answers),
            },
        )

    def _post_update(self) -> None:
        body = self._read_json()
        adds = list(parse_ntriples(body.get("add", "")))
        removes = list(parse_ntriples(body.get("remove", "")))
        if not adds and not removes:
            raise ValueError("provide 'add' and/or 'remove' as N-Triples text")
        self._send_json(200, self.service.update(adds=adds, removes=removes))


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------

class ReproServer:
    """A threading HTTP server bound to one :class:`EngineService`.

    ``port=0`` binds an ephemeral port (read it back via :attr:`port`) —
    the shape the integration tests and embedded uses want.  ``start()``
    serves from a daemon thread; ``serve_forever()`` serves inline (the
    CLI path).
    """

    def __init__(
        self,
        service: EngineService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
