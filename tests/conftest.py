"""Shared fixtures: the paper's running example and small datasets."""

import pytest

from repro.datasets import DblpConfig, LubmConfig, TapConfig
from repro.datasets import generate_dblp, generate_lubm, generate_tap
from repro.datasets.example import running_example_graph


@pytest.fixture(scope="session")
def example_graph():
    """The Fig. 1a running-example data graph."""
    return running_example_graph()


@pytest.fixture(scope="session")
def dblp_small():
    """A small deterministic DBLP-shaped graph (shared, do not mutate)."""
    return generate_dblp(DblpConfig(publications=300))


@pytest.fixture(scope="session")
def lubm_small():
    return generate_lubm(LubmConfig(universities=1))


@pytest.fixture(scope="session")
def tap_small():
    return generate_tap(TapConfig(instances_per_class=4))
