"""End-to-end test of the `repro serve` HTTP front end.

Spins the stdlib server on an ephemeral port over the running example and
exercises /search (GET + batched POST), /execute, /update, /stats as a
real HTTP client would.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.ntriples import serialize_ntriples
from repro.service import EngineService, ReproServer


@pytest.fixture()
def server(example_graph):
    engine = KeywordSearchEngine(
        DataGraph(example_graph.triples), k=5, search_cache_size=16
    )
    service = EngineService(engine, workers=2)
    with ReproServer(service, port=0).start() as srv:
        yield srv
    service.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def test_search_endpoint(server):
    status, body = _get(f"{server.url}/search?q=cimiano+2006&k=3")
    assert status == 200
    assert body["keywords"] == ["cimiano", "2006"]
    assert body["candidates"], "the running example must yield interpretations"
    top = body["candidates"][0]
    assert top["rank"] == 1
    assert "SELECT" in top["sparql"]
    assert "total" in body["timings_ms"]


def test_batch_search_endpoint(server):
    status, body = _post(
        f"{server.url}/search", {"queries": ["cimiano 2006", "aifb"], "k": 3}
    )
    assert status == 200
    outcomes = body["outcomes"]
    assert [o["status"] for o in outcomes] == ["ok", "ok"]
    assert outcomes[0]["result"]["keywords"] == ["cimiano", "2006"]


def test_execute_endpoint(server):
    status, body = _post(
        f"{server.url}/execute", {"q": "2006 cimiano aifb", "rank": 1, "limit": 5}
    )
    assert status == 200
    assert body["candidate"]["rank"] == 1
    assert isinstance(body["answers"], list)
    assert body["answers"], "the top interpretation has answers in the example"


def test_update_then_search_sees_new_data(server):
    miss_status, miss = _get(f"{server.url}/search?q=zzzservenew")
    assert miss["ignored_keywords"] == ["zzzservenew"]

    ntriples = (
        '<http://example.org/servepub> '
        '<http://www.w3.org/2000/01/rdf-schema#label> "zzzservenew paper" .'
    )
    status, body = _post(f"{server.url}/update", {"add": ntriples})
    assert status == 200
    assert body["changed"] == 1
    assert body["epoch"] == 1

    status, hit = _get(f"{server.url}/search?q=zzzservenew")
    assert status == 200
    assert hit["ignored_keywords"] == []


def test_update_remove(server, example_graph):
    victim = next(t for t in example_graph.triples if "2006" in t.n3())
    status, body = _post(
        f"{server.url}/update", {"remove": serialize_ntriples([victim])}
    )
    assert status == 200
    assert body["changed"] == 1


def test_stats_endpoint(server):
    _get(f"{server.url}/search?q=cimiano")
    _get(f"{server.url}/search?q=cimiano")
    status, stats = _get(f"{server.url}/stats")
    assert status == 200
    assert stats["queries"]["completed"] >= 2
    assert stats["service"]["workers"] == 2
    assert stats["caches"]["search_results"]["hits"] >= 1
    assert "summary_version" in stats["snapshot"]


def test_bad_requests(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{server.url}/search")  # missing q
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{server.url}/search?q=%20")  # whitespace-only query
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{server.url}/nope")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{server.url}/update", {})
    assert excinfo.value.code == 400
    # Malformed numeric knobs in a POST body are the client's mistake
    # (400), same as on the GET path — never a 500.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{server.url}/search", {"q": "cimiano", "k": "abc"})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{server.url}/search", {"queries": ["cimiano"], "timeout": "soon"})
    assert excinfo.value.code == 400
