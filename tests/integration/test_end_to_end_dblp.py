"""Integration tests on the DBLP-shaped dataset: the Fig. 4/5 pipelines."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets import DblpConfig, generate_dblp
from repro.datasets.workloads import (
    dblp_effectiveness_workload,
    dblp_performance_queries,
)
from repro.eval.effectiveness import evaluate_effectiveness


@pytest.fixture(scope="module")
def graph():
    return generate_dblp(DblpConfig(publications=400))


@pytest.fixture(scope="module")
def engines(graph):
    base = KeywordSearchEngine(graph, cost_model="c3", k=10)
    return {
        name: KeywordSearchEngine(
            graph,
            cost_model=name,
            k=10,
            summary=base.summary,
            keyword_index=base.keyword_index,
        )
        for name in ("c1", "c2", "c3")
    }


def test_every_workload_query_produces_candidates(engines):
    engine = engines["c3"]
    for entry in dblp_effectiveness_workload():
        result = engine.search(entry.keywords, k=10)
        assert result.candidates, f"{entry.qid} produced no queries"


def test_mrr_ordering_matches_fig4(engines):
    """The paper's headline effectiveness result: C3 ≥ C2 ≥ C1 on MRR,
    and C3 best-or-tied on every query."""
    workload = dblp_effectiveness_workload()
    reports = {
        name: evaluate_effectiveness(engine, workload, k=10)
        for name, engine in engines.items()
    }
    assert reports["c3"].mrr >= reports["c2"].mrr >= reports["c1"].mrr
    assert reports["c3"].mrr > 0.7
    for entry in workload:
        assert reports["c3"].rr(entry.qid) >= reports["c2"].rr(entry.qid) - 1e-9


def test_performance_queries_complete(engines):
    engine = engines["c3"]
    for entry in dblp_performance_queries():
        outcome = engine.search_and_execute(entry.keywords, k=10, min_answers=10)
        assert outcome["result"].candidates, f"{entry.qid} found nothing"


def test_queries_execute_on_the_store(engines):
    engine = engines["c3"]
    outcome = engine.search_and_execute("cimiano 2006", k=10, min_answers=5)
    assert outcome["answers"], "top queries yielded no answers"


def test_typo_recovery_end_to_end(engines):
    result = engines["c3"].search("cimano publications", k=10)
    assert result.candidates
    constants = {str(c) for c in result.best().query.constants}
    assert any("Cimiano" in c for c in constants)


def test_relation_keyword_interpretation(engines):
    result = engines["c3"].search("cites database", k=10)
    from repro.datasets.dblp import DBLP

    assert any(
        DBLP.cites in {a.predicate for a in cand.query.atoms} for cand in result
    )


def test_exploration_diagnostics_scale_with_keywords(engines):
    engine = engines["c3"]
    small = engine.search("cimiano 2006").exploration
    large = engine.search("cimiano tran keyword 2006").exploration
    assert large.cursors_created >= small.cursors_created
