"""End-to-end tests for `repro eval`: seed -> bless -> run -> check.

Everything runs in a tmp working directory (the CLI's default
``eval/goldens``, ``eval/reports``, ``eval/baselines`` layout is
relative), over the running example so the whole loop stays fast.
"""

import json
import os

import pytest

from repro import cli
from repro.core.engine import KeywordSearchEngine
from repro.datasets import example_effectiveness_workload, graph_for
from repro.quality import load_goldens, load_report, seed_cases_in_process
from repro.service import EngineService, ReproServer


@pytest.fixture()
def evaldir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _latest_report(dataset="example"):
    return load_report(os.path.join("eval", "reports", f"{dataset}-latest.json"))


class TestSeedBlessRunCheck:
    def test_full_loop(self, evaldir, capsys):
        # 1. Seeding without --bless writes proposals, not goldens.
        assert cli.main(["eval", "seed", "--dataset", "example"]) == 0
        proposed = "eval/goldens/example.jsonl.proposed.jsonl"
        assert os.path.exists(proposed)
        assert not os.path.exists("eval/goldens/example.jsonl")
        for case in load_goldens(proposed):
            assert case.provenance["blessed"] is False

        # 2. The gate refuses to score proposals.
        with pytest.raises(SystemExit, match="no blessed"):
            cli.main(
                ["eval", "run", "--dataset", "example", "--goldens", proposed]
            )

        # 3. Blessed seeding (the trusted-workflow path) admits them.
        assert cli.main(["eval", "seed", "--dataset", "example", "--bless"]) == 0
        goldens = load_goldens("eval/goldens/example.jsonl")
        assert len(goldens) == len(example_effectiveness_workload())
        assert all(c.provenance["blessed"] for c in goldens)

        # 4. First run writes the report and, on request, the baseline.
        assert (
            cli.main(["eval", "run", "--dataset", "example", "--update-baseline"])
            == 0
        )
        report = _latest_report()
        assert report["num_cases"] == len(goldens)
        assert report["aggregates"]["intent_mrr"] == 1.0
        assert os.path.exists("eval/baselines/example.json")

        # 5. An unchanged engine passes the gate.
        assert cli.main(["eval", "check", "--dataset", "example"]) == 0
        out = capsys.readouterr().out
        assert "OK: all metrics at or above baseline" in out

        # 6. A second run records deltas against the first.
        assert cli.main(["eval", "run", "--dataset", "example"]) == 0
        report = _latest_report()
        assert report["deltas_vs_previous"]["query_mrr"]["delta"] == 0.0

    def test_check_without_baseline_explains(self, evaldir):
        cli.main(["eval", "seed", "--dataset", "example", "--bless"])
        with pytest.raises(SystemExit, match="no baseline"):
            cli.main(["eval", "check", "--dataset", "example"])


class TestGateFires:
    def test_perturbed_costs_fail_the_gate(self, evaldir, capsys):
        """The self-test the gate earns its keep with: a deliberately
        degraded ranking must exit nonzero."""
        cli.main(["eval", "seed", "--dataset", "example", "--bless"])
        cli.main(["eval", "run", "--dataset", "example", "--update-baseline"])
        capsys.readouterr()
        assert (
            cli.main(
                ["eval", "check", "--dataset", "example", "--perturb-costs"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "below baseline" in out


class TestBundleTiers:
    def test_bundle_and_mmap_metrics_identical(self, evaldir):
        """Acceptance: --bundle and --bundle --index-tier mmap agree."""
        engine = KeywordSearchEngine(graph_for("example"), cost_model="c3", k=10)
        engine.save("example.reprobundle")
        cli.main(
            [
                "eval", "seed", "--dataset", "example",
                "--bundle", "example.reprobundle", "--bless",
            ]
        )
        assert (
            cli.main(
                [
                    "eval", "run", "--dataset", "example",
                    "--bundle", "example.reprobundle", "--update-baseline",
                ]
            )
            == 0
        )
        memory = _latest_report()
        assert (
            cli.main(
                [
                    "eval", "run", "--dataset", "example",
                    "--bundle", "example.reprobundle", "--index-tier", "mmap",
                ]
            )
            == 0
        )
        mmap = _latest_report()
        assert mmap["aggregates"] == memory["aggregates"]
        assert [c["metrics"] for c in mmap["cases"]] == [
            c["metrics"] for c in memory["cases"]
        ]
        assert all(
            d["delta"] == 0.0 for d in mmap["deltas_vs_previous"].values()
        )
        # And the mmap-served configuration passes the memory baseline.
        assert (
            cli.main(
                [
                    "eval", "check", "--dataset", "example",
                    "--bundle", "example.reprobundle", "--index-tier", "mmap",
                ]
            )
            == 0
        )


class TestDiff:
    def test_diff_two_reports(self, evaldir, capsys):
        cli.main(["eval", "seed", "--dataset", "example", "--bless"])
        cli.main(["eval", "run", "--dataset", "example"])
        history = sorted(os.listdir("eval/reports/history"))
        cli.main(["eval", "run", "--dataset", "example", "--perturb-costs"])
        history_after = sorted(os.listdir("eval/reports/history"))
        new = (set(history_after) - set(history)).pop()
        capsys.readouterr()
        assert (
            cli.main(
                [
                    "eval", "diff",
                    os.path.join("eval/reports/history", new),
                    os.path.join("eval/reports/history", history[0]),
                ]
            )
            == 0
        )
        diff = json.loads(capsys.readouterr().out)
        assert diff["datasets"] == ["example", "example"]
        assert "query_mrr" in diff["aggregates"]
        assert not diff["only_in_a"] and not diff["only_in_b"]


class TestEndpointSeeding:
    def test_seed_from_live_endpoint(self, evaldir, capsys):
        """Endpoint-seeded goldens agree with in-process ones on the
        signatures themselves (grades differ: HTTP cannot re-run intent
        matching, so its ceiling is grade 2)."""
        engine = KeywordSearchEngine(graph_for("example"), cost_model="c3", k=10)
        service = EngineService(engine, workers=2)
        try:
            with ReproServer(service, port=0).start() as server:
                assert (
                    cli.main(
                        [
                            "eval", "seed", "--dataset", "example",
                            "--endpoint", server.url,
                        ]
                    )
                    == 0
                )
        finally:
            service.close()
        endpoint_cases = {
            c.qid: c
            for c in load_goldens("eval/goldens/example.jsonl.proposed.jsonl")
        }
        local_cases = {
            c.qid: c
            for c in seed_cases_in_process(
                engine, example_effectiveness_workload()
            )
        }
        assert endpoint_cases.keys() == local_cases.keys()
        for qid, local in local_cases.items():
            remote = endpoint_cases[qid]
            assert set(remote.query_relevance()) == set(local.query_relevance())
            assert remote.answer_relevance() == local.answer_relevance()
            assert remote.provenance["seeded_from"].startswith("http")

    def test_seed_survives_server_with_shallower_k(self, evaldir):
        """A stock server (k=5) serves fewer /execute ranks than
        /search?k=10 returns candidates; seeding must grade what the
        endpoint can execute instead of crashing on the 404."""
        from repro.quality.seeding import seed_cases_from_endpoint

        engine = KeywordSearchEngine(graph_for("example"), cost_model="c3", k=2)
        service = EngineService(engine)
        try:
            with ReproServer(service, port=0).start() as server:
                cases = seed_cases_from_endpoint(
                    server.url, example_effectiveness_workload(), eval_k=10
                )
        finally:
            service.close()
        assert len(cases) == len(example_effectiveness_workload())
        assert all(c.expected_answers for c in cases)
