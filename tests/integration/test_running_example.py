"""Integration test E5: the paper's running example, end to end (Fig. 1-3).

The keyword query ``2006 cimiano aifb`` over the Fig. 1a data graph must
produce the Fig. 1c conjunctive query at rank 1, translate it to SPARQL and
single-table SQL, and retrieve the single matching answer — under every
cost model.
"""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.example import EX
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.isomorphism import queries_isomorphic
from repro.query.sparql import parse_sparql
from repro.query.sql import to_table_patterns
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, Variable
from repro.store.single_table import SingleTableStore

x, y, z = Variable("x"), Variable("y"), Variable("z")


def fig1c_with_type_atoms() -> ConjunctiveQuery:
    """Fig. 1c plus the type atoms Section VI-D's rules require."""
    return ConjunctiveQuery(
        [
            Atom(RDF.type, x, EX.Publication),
            Atom(EX.year, x, Literal("2006")),
            Atom(EX.author, x, y),
            Atom(RDF.type, y, EX.Researcher),
            Atom(EX.name, y, Literal("P. Cimiano")),
            Atom(EX.worksAt, y, z),
            Atom(RDF.type, z, EX.Institute),
            Atom(EX.name, z, Literal("AIFB")),
        ]
    )


@pytest.mark.parametrize("cost_model", ["c1", "c2", "c3", "pagerank"])
def test_fig1c_query_ranked_first(example_graph, cost_model):
    engine = KeywordSearchEngine(example_graph, cost_model=cost_model, k=5)
    result = engine.search("2006 cimiano aifb")
    assert result.candidates, f"no candidates under {cost_model}"
    assert queries_isomorphic(result.best().query, fig1c_with_type_atoms())


def test_answer_is_pub1(example_graph):
    engine = KeywordSearchEngine(example_graph, cost_model="c3", k=5)
    result = engine.search("2006 cimiano aifb")
    answers = engine.execute(result.best())
    assert len(answers) == 1
    bindings = set(answers[0].values)
    assert {EX.pub1URI, EX.re2URI, EX.inst1URI} == bindings


def test_sparql_round_trip_preserves_answers(example_graph):
    engine = KeywordSearchEngine(example_graph, cost_model="c3", k=5)
    candidate = engine.search("2006 cimiano aifb").best()
    reparsed = parse_sparql(candidate.to_sparql())
    assert queries_isomorphic(reparsed, candidate.query)
    assert len(engine.execute(reparsed)) == 1


def test_single_table_sql_semantics_agree(example_graph):
    """The Fig. 1c SQL self-join plan returns the same answer as the
    indexed evaluator — the two storage backends agree."""
    engine = KeywordSearchEngine(example_graph, cost_model="c3", k=5)
    candidate = engine.search("2006 cimiano aifb").best()
    table = SingleTableStore(example_graph)
    patterns, projection = to_table_patterns(candidate.query)
    rows = table.evaluate_self_join(patterns, projection)
    answers = engine.execute(candidate)
    assert {tuple(r) for r in rows} == {a.values for a in answers}


def test_exploration_terminates_with_guarantee(example_graph):
    engine = KeywordSearchEngine(example_graph, cost_model="c3", k=3)
    result = engine.search("2006 cimiano aifb")
    assert result.exploration.terminated_by in ("threshold", "exhausted")


def test_alternative_interpretations_ranked_behind(example_graph):
    """Top-5 contains distinct interpretations with non-decreasing costs."""
    engine = KeywordSearchEngine(example_graph, cost_model="c3", k=5)
    result = engine.search("2006 cimiano aifb")
    assert len(result) >= 3
    costs = [c.cost for c in result]
    assert costs == sorted(costs)


def test_xmedia_intro_query(example_graph):
    """The intro's 'X-Media Cimiano publications' needs the inferred
    hasProject and author connections (Section III)."""
    engine = KeywordSearchEngine(example_graph, cost_model="c3", k=10)
    result = engine.search('"x-media" cimiano publication')
    assert result.candidates
    predicates = {a.predicate for a in result.best().query.atoms}
    assert EX.hasProject in predicates
    assert EX.author in predicates
