"""End-to-end test of `repro serve --workers N`: HTTP over the dispatch tier.

The same stdlib server as `test_serve_http`, but the service behind it is
a :class:`DispatchService` fanning requests over two worker processes
that each map the shared bundle.  The acceptance claims: the endpoints
are tier-agnostic (same JSON shapes), and an `/update` propagates its
epoch to *every* worker before the response returns.
"""

import json
import urllib.request

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.service import DispatchService, ReproServer


@pytest.fixture(scope="module")
def dispatch_server(example_graph, tmp_path_factory):
    bundle = str(tmp_path_factory.mktemp("dispatch-http") / "ex.reprobundle")
    KeywordSearchEngine(DataGraph(example_graph.triples), k=5).save(bundle)
    service = DispatchService(bundle, workers=2)
    with ReproServer(service, port=0).start() as srv:
        yield srv
    service.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def test_search_shape_matches_inprocess_tier(dispatch_server):
    status, body = _get(f"{dispatch_server.url}/search?q=cimiano+2006&k=3")
    assert status == 200
    assert body["keywords"] == ["cimiano", "2006"]
    assert body["candidates"]
    top = body["candidates"][0]
    assert top["rank"] == 1
    assert "SELECT" in top["sparql"]
    assert "total" in body["timings_ms"]


def test_execute_endpoint(dispatch_server):
    status, body = _post(
        f"{dispatch_server.url}/execute",
        {"q": "2006 cimiano aifb", "rank": 1, "limit": 5},
    )
    assert status == 200
    assert body["candidate"]["rank"] == 1
    assert body["answers"]


def test_batch_search_endpoint(dispatch_server):
    status, body = _post(
        f"{dispatch_server.url}/search",
        {"queries": ["cimiano 2006", "aifb"], "k": 3},
    )
    assert status == 200
    outcomes = body["outcomes"]
    assert [o["status"] for o in outcomes] == ["ok", "ok"]
    assert outcomes[0]["result"]["keywords"] == ["cimiano", "2006"]


def test_update_epoch_advances_on_all_workers(dispatch_server):
    _, stats_before = _get(f"{dispatch_server.url}/stats")
    epoch_before = stats_before["snapshot"]["epoch"]

    ntriples = (
        '<http://example.org/dispatchpub> '
        '<http://www.w3.org/2000/01/rdf-schema#label> "zzdispatchnew paper" .'
    )
    status, body = _post(f"{dispatch_server.url}/update", {"add": ntriples})
    assert status == 200
    assert body["changed"] == 1
    assert body["epoch"] == epoch_before + 1
    # The sync broadcast acked on both workers before /update returned.
    assert body["workers_synced"] == 2

    # Immediately visible: whichever worker serves this, it is at the
    # new epoch (no read-your-writes anomaly across processes).
    for _ in range(4):
        status, hit = _get(f"{dispatch_server.url}/search?q=zzdispatchnew")
        assert status == 200
        assert hit["ignored_keywords"] == []
        assert hit["candidates"]

    status, stats = _get(f"{dispatch_server.url}/stats")
    assert status == 200
    assert stats["service"]["mode"] == "dispatch"
    live = [w for w in stats["workers"] if w.get("alive")]
    assert len(live) == 2
    assert all(w["epoch"] == body["epoch"] for w in live)


def test_stats_merges_dispatch_counters(dispatch_server):
    _get(f"{dispatch_server.url}/search?q=cimiano")
    status, stats = _get(f"{dispatch_server.url}/stats")
    assert status == 200
    assert stats["queries"]["completed"] >= 1
    assert "queue_wait_p99_ms" in stats["queries"]
    assert "restarts" in stats["dispatch"]
    assert stats["dispatch"]["watermark"] == stats["snapshot"]["epoch"]
