"""Integration tests for the baselines on realistic data."""

import pytest

from repro.baselines import (
    BackwardSearch,
    BidirectionalSearch,
    EntityGraphView,
    PartitionedIndexSearch,
)
from repro.datasets import DblpConfig, generate_dblp


@pytest.fixture(scope="module")
def graph():
    return generate_dblp(DblpConfig(publications=300))


@pytest.fixture(scope="module")
def view(graph):
    return EntityGraphView(graph)


@pytest.fixture(scope="module")
def systems(view):
    return {
        "backward": BackwardSearch(view),
        "bidirectional": BidirectionalSearch(view),
        "300-bfs": PartitionedIndexSearch(view, blocks=50, partitioner="bfs"),
        "300-metis": PartitionedIndexSearch(view, blocks=50, partitioner="metis"),
    }


QUERIES = [["cimiano", "2006"], ["icde", "database"], ["turing", "graph", "sigmod"]]


@pytest.mark.parametrize("query", QUERIES, ids=["q1", "q2", "q3"])
def test_all_systems_find_trees(systems, query):
    for name, system in systems.items():
        result = system.search(query, k=10)
        assert result.trees, f"{name} found nothing for {query}"


def test_answer_trees_contain_keyword_matches(systems, view):
    keywords = ["cimiano", "2006"]
    sets = view.keyword_nodes_all(keywords)
    for name, system in systems.items():
        for tree in system.search(keywords, k=5).trees:
            for path, keyword_nodes in zip(tree.paths, sets):
                assert path[-1] in keyword_nodes, f"{name}: leaf not a match"


def test_guided_search_visits_fewer_nodes_than_backward(systems):
    """The point of the partition index: guidance prunes the frontier."""
    keywords = ["turing", "graph", "sigmod"]
    plain = systems["backward"].search(keywords, k=10)
    guided = systems["300-bfs"].search(keywords, k=10)
    assert guided.nodes_visited <= plain.nodes_visited * 1.5


def test_distinct_root_assumption_limits_results(view, graph):
    """Backward search only returns roots that REACH all keywords along
    directed paths — our engine's query paradigm is strictly more general
    (Section VI-D's discussion)."""
    from repro.core.engine import KeywordSearchEngine

    keywords = ["aifb2006missing", "nothing"]  # no matches at all
    result = BackwardSearch(view).search(keywords, k=5)
    assert result.trees == []
