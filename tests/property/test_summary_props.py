"""Property tests for summary-graph soundness (Definition 4).

The data-guide-like property the exploration relies on: for every edge —
and hence every path — in the data graph, a corresponding edge/path exists
in the summary graph, and aggregation counts tally exactly.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.summary.elements import SummaryEdgeKind, THING_KEY
from repro.summary.summary_graph import SummaryGraph

ENTITIES = [URI(f"e:{i}") for i in range(6)]
CLASSES = [URI(f"C:{i}") for i in range(3)]
RELATIONS = [URI(f"r:{i}") for i in range(2)]

type_triples = st.builds(
    lambda e, c: Triple(e, RDF.type, c),
    st.sampled_from(ENTITIES),
    st.sampled_from(CLASSES),
)
relation_triples = st.builds(
    Triple,
    st.sampled_from(ENTITIES),
    st.sampled_from(RELATIONS),
    st.sampled_from(ENTITIES),
)
subclass_triples = st.builds(
    lambda a, b: Triple(a, RDFS.subClassOf, b),
    st.sampled_from(CLASSES),
    st.sampled_from(CLASSES),
)
attribute_triples = st.builds(
    lambda e, v: Triple(e, URI("a:val"), Literal(v)),
    st.sampled_from(ENTITIES),
    st.sampled_from(["x", "y"]),
)

graphs = st.lists(
    st.one_of(type_triples, relation_triples, subclass_triples, attribute_triples),
    min_size=1,
    max_size=25,
).map(DataGraph)


@given(graphs)
@settings(max_examples=150, deadline=None)
def test_every_relation_edge_has_summary_projection(graph):
    summary = SummaryGraph.from_data_graph(graph)
    for triple in graph.relation_triples():
        source_classes = graph.types_of(triple.subject) or {None}
        target_classes = graph.types_of(triple.object) or {None}
        for sc in source_classes:
            for tc in target_classes:
                key = (
                    "edge",
                    triple.predicate,
                    summary.class_key(sc),
                    summary.class_key(tc),
                )
                assert summary.has_element(key)


@given(graphs)
@settings(max_examples=100, deadline=None)
def test_edge_aggregation_counts_tally(graph):
    summary = SummaryGraph.from_data_graph(graph)
    expected = Counter()
    for triple in graph.relation_triples():
        for sc in graph.types_of(triple.subject) or {None}:
            for tc in graph.types_of(triple.object) or {None}:
                expected[
                    (triple.predicate, summary.class_key(sc), summary.class_key(tc))
                ] += 1
    for edge in summary.edges:
        if edge.kind is SummaryEdgeKind.RELATION:
            assert edge.agg_count == expected[
                (edge.label, edge.source_key, edge.target_key)
            ]


@given(graphs)
@settings(max_examples=100, deadline=None)
def test_vertex_aggregation_counts_tally(graph):
    summary = SummaryGraph.from_data_graph(graph)
    for cls in graph.classes:
        assert summary.vertex(("class", cls)).agg_count == len(graph.instances_of(cls))
    untyped = len(graph.untyped_entities)
    if summary.has_element(THING_KEY):
        assert summary.vertex(THING_KEY).agg_count == untyped


@given(graphs)
@settings(max_examples=100, deadline=None)
def test_two_hop_path_soundness(graph):
    """For every 2-hop data path there is a summary path ('for every path in
    the data graph, there is at least one path in the summary graph')."""
    summary = SummaryGraph.from_data_graph(graph)
    relation_list = list(graph.relation_triples())
    for t1 in relation_list[:5]:
        for t2 in relation_list[:5]:
            if t1.object != t2.subject:
                continue
            mid_classes = graph.types_of(t1.object) or {None}
            src_classes = graph.types_of(t1.subject) or {None}
            dst_classes = graph.types_of(t2.object) or {None}
            found = any(
                summary.has_element(
                    ("edge", t1.predicate, summary.class_key(sc), summary.class_key(mc))
                )
                and summary.has_element(
                    ("edge", t2.predicate, summary.class_key(mc), summary.class_key(dc))
                )
                for mc in mid_classes
                for sc in src_classes
                for dc in dst_classes
            )
            assert found


@given(graphs)
@settings(max_examples=60, deadline=None)
def test_summary_never_larger_than_data(graph):
    """|G'| ≤ |G| in elements — the compression direction of Section IV-B."""
    summary = SummaryGraph.from_data_graph(graph)
    stats = graph.stats()
    data_elements = (
        stats["entities"] + stats["classes"] + stats["values"]
        + stats["relation_edges"] + stats["attribute_edges"]
        + stats["triples"]
    )
    assert len(summary) <= data_elements
