"""Property test: the top-k guarantee of Algorithm 2 (Section VI-C).

The paper's central formal claim is that — unlike BANKS/bidirectional — the
exploration returns *exactly* the k minimal matching subgraphs.  We verify
it against a brute-force oracle: enumerate every simple path (≤ dmax
elements) from every keyword element, form every path combination at every
connecting element, deduplicate by element set, and take the k cheapest.
The exploration must report the same cost sequence.
"""

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exploration import explore_top_k
from repro.rdf.terms import URI
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.elements import SummaryEdgeKind
from repro.summary.summary_graph import SummaryGraph


def build_random_graph(n_vertices, edge_pairs):
    graph = SummaryGraph()
    keys = [graph.add_class_vertex(URI(f"c:{i}"), agg_count=1).key for i in range(n_vertices)]
    for j, (a, b) in enumerate(edge_pairs):
        graph.add_edge(
            URI(f"e:{j}"), SummaryEdgeKind.RELATION, keys[a % n_vertices], keys[b % n_vertices]
        )
    return graph, keys


def enumerate_paths(graph, origin, costs, dmax):
    """All simple paths from `origin` as {tip: [(cost, frozenset elements)]}.

    Distance semantics mirror the exploration: a path of distance d has
    d+1 elements; paths up to distance dmax are usable.
    """
    out = {}
    stack = [(origin, costs[origin], (origin,))]
    while stack:
        tip, cost, path = stack.pop()
        out.setdefault(tip, []).append((cost, frozenset(path)))
        if len(path) - 1 >= dmax:
            continue
        parent = path[-2] if len(path) >= 2 else None
        for neighbor in graph.neighbors(tip):
            if neighbor == parent or neighbor in path:
                continue
            stack.append((neighbor, cost + costs[neighbor], path + (neighbor,)))
    return out


def oracle_top_k(graph, keyword_sets, costs, k, dmax):
    """Brute-force k cheapest matching subgraphs (as sorted costs)."""
    per_keyword = []
    for elements in keyword_sets:
        merged = {}
        for origin in elements:
            for tip, paths in enumerate_paths(graph, origin, costs, dmax).items():
                merged.setdefault(tip, []).extend(paths)
        per_keyword.append(merged)

    best_by_set = {}
    common = set(per_keyword[0])
    for table in per_keyword[1:]:
        common &= set(table)
    for element in common:
        path_lists = [table[element] for table in per_keyword]
        for combo in product(*path_lists):
            elements = frozenset().union(*(p[1] for p in combo))
            cost = sum(p[0] for p in combo)
            if cost < best_by_set.get(elements, float("inf")):
                best_by_set[elements] = cost
    return sorted(best_by_set.values())[:k]


@st.composite
def exploration_cases(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    n_edges = draw(st.integers(min_value=1, max_value=8))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    m = draw(st.integers(min_value=1, max_value=3))
    keyword_sets = [
        set(draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2)))
        for _ in range(m)
    ]
    cost_choices = draw(
        st.lists(
            st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]),
            min_size=n + n_edges,
            max_size=n + n_edges,
        )
    )
    k = draw(st.integers(min_value=1, max_value=4))
    return n, edges, keyword_sets, cost_choices, k


@given(exploration_cases(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_exploration_matches_oracle(case, guided):
    n, edges, keyword_indices, cost_choices, k = case
    graph, keys = build_random_graph(n, edges)
    keyword_sets = [{keys[i] for i in indices} for indices in keyword_indices]

    costs = {}
    elements = [v.key for v in graph.vertices] + [e.key for e in graph.edges]
    for element, cost in zip(elements, cost_choices):
        costs[element] = cost
    for element in elements[len(cost_choices):]:  # pragma: no cover - safety
        costs[element] = 1.0

    dmax = 6
    augmented = AugmentedSummaryGraph(graph, [set(ks) for ks in keyword_sets], {})
    result = explore_top_k(augmented, costs, k=k, dmax=dmax, guided=guided)
    got = [sg.cost for sg in result.subgraphs]

    expected = oracle_top_k(graph, keyword_sets, costs, k, dmax)

    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g == pytest.approx(e), (got, expected)


@given(exploration_cases())
@settings(max_examples=60, deadline=None)
def test_results_are_valid_matching_subgraphs(case):
    """Definition 6 invariants: every result contains a representative per
    keyword and is connected."""
    n, edges, keyword_indices, cost_choices, k = case
    graph, keys = build_random_graph(n, edges)
    keyword_sets = [{keys[i] for i in indices} for indices in keyword_indices]
    elements = [v.key for v in graph.vertices] + [e.key for e in graph.edges]
    costs = {el: (cost_choices[i] if i < len(cost_choices) else 1.0)
             for i, el in enumerate(elements)}

    augmented = AugmentedSummaryGraph(graph, [set(ks) for ks in keyword_sets], {})
    result = explore_top_k(augmented, costs, k=k, dmax=6)

    for sg in result.subgraphs:
        # Representative per keyword.
        for ks in keyword_sets:
            assert sg.elements & ks
        # Connectivity over the element-neighborhood relation.
        members = set(sg.elements)
        start = next(iter(members))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in graph.neighbors(current):
                if neighbor in members and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        assert seen == members, "subgraph not connected"


@given(exploration_cases())
@settings(max_examples=60, deadline=None)
def test_costs_ascending_and_bounded_by_k(case):
    n, edges, keyword_indices, cost_choices, k = case
    graph, keys = build_random_graph(n, edges)
    keyword_sets = [{keys[i] for i in indices} for indices in keyword_indices]
    elements = [v.key for v in graph.vertices] + [e.key for e in graph.edges]
    costs = {el: (cost_choices[i] if i < len(cost_choices) else 1.0)
             for i, el in enumerate(elements)}

    augmented = AugmentedSummaryGraph(graph, [set(ks) for ks in keyword_sets], {})
    result = explore_top_k(augmented, costs, k=k, dmax=6)
    assert len(result.subgraphs) <= k
    got = [sg.cost for sg in result.subgraphs]
    assert got == sorted(got)
    # Distinct element sets.
    sets = [sg.elements for sg in result.subgraphs]
    assert len(sets) == len(set(sets))
