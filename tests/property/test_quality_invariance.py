"""Property: quality metrics are invariant under answer-order permutation.

The evaluator enumerates hash sets, so raw answer order varies across
index tiers, worker processes, and hash seeds while the answer *set* is
identical.  The quality pipeline canonicalizes (sort by signature per
candidate, dedupe at best rank) before any metric sees a ranking — these
properties pin down that no permutation of the raw per-candidate answer
order can change a reported metric.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality.metrics import (
    dedupe_ranked,
    ndcg_at_k,
    recall_at_k,
    reciprocal_rank_graded,
)
from repro.quality.signatures import answer_json_signature

# Answer payloads over a small vocabulary so collisions (identical
# answers from different candidates) actually happen.
_payloads = st.dictionaries(
    keys=st.sampled_from(["?x", "?y", "?z"]),
    values=st.sampled_from(['"a"', '"b"', "<http://e/1>", "<http://e/2>"]),
    min_size=1,
    max_size=3,
)

#: A "search result": up to 4 candidates, each with an answer list.
_results = st.lists(st.lists(_payloads, max_size=6), min_size=1, max_size=4)


def _canonical_ranking(result, depth=10):
    """The runner's merge: per-candidate canonical sort, global dedupe."""
    ranked = []
    for answers in result:
        ranked.extend(sorted(answer_json_signature(a) for a in answers))
    return dedupe_ranked(ranked)[:depth]


def _shuffled(result, seed):
    import random

    rng = random.Random(seed)
    shuffled = []
    for answers in result:
        answers = list(answers)
        rng.shuffle(answers)
        shuffled.append(answers)
    return shuffled


@st.composite
def _result_and_relevance(draw):
    result = draw(_results)
    signatures = sorted(
        {answer_json_signature(a) for answers in result for a in answers}
    )
    grades = draw(
        st.lists(
            st.sampled_from([0.0, 1.0, 2.0, 3.0]),
            min_size=len(signatures),
            max_size=len(signatures),
        )
    )
    return result, dict(zip(signatures, grades))


@settings(max_examples=200, deadline=None)
@given(data=_result_and_relevance(), seed=st.integers(0, 2**16))
def test_metrics_invariant_under_answer_permutation(data, seed):
    result, relevance = data
    baseline = _canonical_ranking(result)
    permuted = _canonical_ranking(_shuffled(result, seed))
    # The canonical ranking itself is permutation-invariant...
    assert permuted == baseline
    # ...and so is every metric computed from it.
    for k in (1, 3, 10):
        assert recall_at_k(permuted, relevance, k) == recall_at_k(
            baseline, relevance, k
        )
        assert ndcg_at_k(permuted, relevance, k) == ndcg_at_k(
            baseline, relevance, k
        )
    assert reciprocal_rank_graded(permuted, relevance) == reciprocal_rank_graded(
        baseline, relevance
    )


@settings(max_examples=100, deadline=None)
@given(
    signatures=st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=4),
        min_size=1,
        max_size=8,
        unique=True,
    ),
    grade=st.sampled_from([1.0, 2.0]),
    seed=st.integers(0, 2**16),
)
def test_ndcg_ties_are_order_free(signatures, grade, seed):
    """Equal grades: any ordering of the tied items scores identically."""
    import random

    relevance = {sig: grade for sig in signatures}
    shuffled = list(signatures)
    random.Random(seed).shuffle(shuffled)
    for k in (1, 5, 10):
        assert ndcg_at_k(shuffled, relevance, k) == ndcg_at_k(
            signatures, relevance, k
        )


@settings(max_examples=100, deadline=None)
@given(answers=st.lists(_payloads, max_size=8), seed=st.integers(0, 2**16))
def test_answers_to_json_is_permutation_invariant(answers, seed):
    """The HTTP layer's canonical serialization — same bytes, any order."""
    import random

    from repro.service.http import answers_to_json

    shuffled = list(answers)
    random.Random(seed).shuffle(shuffled)
    assert answers_to_json(shuffled) == answers_to_json(answers)
