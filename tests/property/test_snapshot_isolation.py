"""Snapshot isolation under racing writes (the serving layer's core claim).

Property: a search racing one `apply_batch(adds, removes)` epoch must
return a result byte-identical to searching either the **pre-batch** or
the **post-batch** engine — never a hybrid of the two states.  The
pre/post oracles are independently *rebuilt* engines (PR 1's
maintained == rebuilt property makes that a sound reference), and results
are compared on their full rendered form: keywords, ignored keywords, and
every candidate's (rank, cost, query, SPARQL).
"""

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import LABEL_PREDICATES
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.service import EngineService

from repro.datasets.example import running_example_graph

BASE_TRIPLES = tuple(running_example_graph().triples)
LABEL = next(iter(LABEL_PREDICATES))
KEYWORDS = "cimiano 2006"
READERS = 3
SEARCHES_PER_READER = 6

_ADD_WORDS = ("cimiano", "2006", "article", "zzmarker")


def _render(result):
    return (
        tuple(result.keywords),
        tuple(result.ignored_keywords),
        tuple(
            (c.rank, c.cost, str(c.query), c.to_sparql()) for c in result.candidates
        ),
    )


def _reference_render(triples):
    """Search a freshly built engine over exactly these triples."""
    return _render(KeywordSearchEngine(DataGraph(triples)).search(KEYWORDS))


@st.composite
def update_batches(draw):
    removes = draw(
        st.lists(st.sampled_from(BASE_TRIPLES), max_size=4, unique=True)
    )
    adds = [
        Triple(
            URI(f"http://example.org/iso/new{i}"),
            LABEL,
            Literal(f"{draw(st.sampled_from(_ADD_WORDS))} fresh {i}"),
        )
        for i in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    return adds, removes


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(update_batches())
def test_racing_search_returns_pre_or_post_state_never_hybrid(batch):
    adds, removes = batch

    pre = _reference_render(BASE_TRIPLES)
    post_triples = [t for t in BASE_TRIPLES if t not in set(removes)] + adds
    post = _reference_render(post_triples)

    engine = KeywordSearchEngine(DataGraph(BASE_TRIPLES))
    service = EngineService(engine, workers=READERS + 1, max_pending=64)
    try:
        observed = []
        observed_lock = threading.Lock()
        failures = []
        start = threading.Barrier(READERS + 1)

        def reader():
            try:
                start.wait()
                for _ in range(SEARCHES_PER_READER):
                    render = _render(service.search(KEYWORDS))
                    with observed_lock:
                        observed.append(render)
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=reader, daemon=True) for _ in range(READERS)
        ]
        for t in threads:
            t.start()
        start.wait()
        service.update(adds=adds, removes=removes)
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "reader wedged against the update epoch"
        assert failures == []

        legal = {pre, post}
        for render in observed:
            assert render in legal, (
                "hybrid result observed: matches neither the pre-batch nor "
                "the post-batch engine"
            )
        # After the epoch committed, only the post state may be served.
        assert _render(service.search(KEYWORDS)) == post
    finally:
        service.close()


def _render_json(payload):
    """The dispatcher-path analogue of `_render`: the same byte-comparable
    tuple, built from the wire-format JSON a worker process returned.
    JSON float round-trips are exact (repr-based), so candidate costs
    compare without tolerance."""
    return (
        tuple(payload["keywords"]),
        tuple(payload["ignored_keywords"]),
        tuple(
            (c["rank"], c["cost"], c["query"], c["sparql"])
            for c in payload["candidates"]
        ),
    )


def _reference_render_json(triples):
    from repro.service import result_to_json

    return _render_json(
        result_to_json(KeywordSearchEngine(DataGraph(triples)).search(KEYWORDS))
    )


@settings(
    max_examples=3,  # each example spawns a 2-worker process pool
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(update_batches())
def test_dispatch_racing_search_is_pre_or_post_never_hybrid(batch):
    """The multiprocess tier preserves the same property: a search racing
    an `/update` through a `--workers 2` dispatcher returns the pre- or
    the post-batch state, never a hybrid — and after `update()` returns,
    *every* worker serves the post state (the sync broadcast acked)."""
    import os
    import shutil
    import tempfile

    from repro.service import DispatchService

    adds, removes = batch
    pre = _reference_render_json(BASE_TRIPLES)
    post_triples = [t for t in BASE_TRIPLES if t not in set(removes)] + adds
    post = _reference_render_json(post_triples)

    tmpdir = tempfile.mkdtemp(prefix="repro-iso-")
    try:
        bundle = os.path.join(tmpdir, "iso.reprobundle")
        KeywordSearchEngine(DataGraph(BASE_TRIPLES)).save(bundle)
        service = DispatchService(bundle, workers=2)
        try:
            observed = []
            observed_lock = threading.Lock()
            failures = []
            readers = 2
            start = threading.Barrier(readers + 1)

            def reader():
                try:
                    start.wait()
                    for _ in range(3):
                        render = _render_json(service.search(KEYWORDS))
                        with observed_lock:
                            observed.append(render)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)

            threads = [
                threading.Thread(target=reader, daemon=True)
                for _ in range(readers)
            ]
            for t in threads:
                t.start()
            start.wait()
            service.update(adds=adds, removes=removes)
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "reader wedged against the update"
            assert failures == []

            legal = {pre, post}
            for render in observed:
                assert render in legal, (
                    "hybrid result observed across process boundary: "
                    "matches neither the pre- nor the post-batch engine"
                )
            # update() acked the sync on every worker: regardless of
            # which one serves these, only the post state is legal now.
            for _ in range(4):
                assert _render_json(service.search(KEYWORDS)) == post
        finally:
            service.close()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(update_batches())
def test_search_many_is_byte_identical_to_sequential_after_update(batch):
    """The batch executor agrees with sequential search on the same
    snapshot, including on a maintained (post-update) engine."""
    adds, removes = batch
    engine = KeywordSearchEngine(DataGraph(BASE_TRIPLES))
    service = EngineService(engine, workers=4)
    try:
        service.update(adds=adds, removes=removes)
        queries = [KEYWORDS, "aifb", "article 2006"]
        snapshot = engine.snapshot()
        expected = [
            _render(engine.search_on_snapshot(snapshot, q)) for q in queries
        ]
        outcomes = service.search_many(queries)
        assert [o.status for o in outcomes] == ["ok"] * len(queries)
        assert [_render(o.result) for o in outcomes] == expected
    finally:
        service.close()


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(update_batches())
def test_shared_frontier_batch_racing_update_is_pre_or_post_never_hybrid(batch):
    """A shared-frontier ``search_many`` racing an update epoch: the fused
    bound-prefuse pass runs against the batch's pinned snapshot, so every
    query in the batch must see *one* engine state — all-pre or all-post,
    never a hybrid, and never bounds from one epoch applied to the other."""
    adds, removes = batch

    pre = _reference_render(BASE_TRIPLES)
    post_triples = [t for t in BASE_TRIPLES if t not in set(removes)] + adds
    post = _reference_render(post_triples)

    engine = KeywordSearchEngine(DataGraph(BASE_TRIPLES), guided=True)
    service = EngineService(engine, workers=4, max_pending=64)
    try:
        batches = []
        failures = []
        start = threading.Barrier(2)

        def reader():
            try:
                start.wait()
                for _ in range(4):
                    outcomes = service.search_many(
                        [KEYWORDS] * 3, shared_frontier=True
                    )
                    assert all(o.ok for o in outcomes)
                    batches.append([_render(o.result) for o in outcomes])
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        start.wait()
        service.update(adds=adds, removes=removes)
        thread.join(timeout=60)
        assert not thread.is_alive(), "batch reader wedged against the update"
        assert failures == []

        legal = {pre, post}
        for renders in batches:
            assert renders[0] in legal, "hybrid result in shared-frontier batch"
            # One snapshot per batch: identical queries, identical answers.
            assert all(render == renders[0] for render in renders)
        # After the epoch committed, a fresh batch serves only post state.
        outcomes = service.search_many([KEYWORDS] * 2, shared_frontier=True)
        assert [_render(o.result) for o in outcomes] == [post, post]
    finally:
        service.close()
