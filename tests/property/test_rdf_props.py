"""Property tests for RDF term/serialization invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.graph import DataGraph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.triples import Triple

# N-Triples-safe URI characters (no angle brackets, whitespace, quotes).
uri_strings = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789:/#._-", min_size=1, max_size=30
).filter(lambda s: not s.isspace())

literal_strings = st.text(max_size=40).filter(
    # Control chars other than the escapable set aren't round-trippable in
    # our line-oriented writer; real datasets never contain them.
    lambda s: all(ch >= " " or ch in "\t\n\r" for ch in s)
)

uris = st.builds(URI, uri_strings)
plain_literals = st.builds(Literal, literal_strings)
lang_literals = st.builds(
    lambda lex, lang: Literal(lex, language=lang),
    literal_strings,
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=5),
)
typed_literals = st.builds(
    lambda lex, dt: Literal(lex, datatype=dt), literal_strings, uris
)
bnodes = st.builds(BNode, st.text(alphabet="abcdef0123456789", min_size=1, max_size=8))

subjects = st.one_of(uris, bnodes)
objects = st.one_of(uris, bnodes, plain_literals, lang_literals, typed_literals)
triples = st.builds(Triple, subjects, uris, objects)


@given(st.lists(triples, max_size=20))
@settings(max_examples=150)
def test_ntriples_round_trip(items):
    document = serialize_ntriples(items)
    assert list(parse_ntriples(document)) == items


# ----------------------------------------------------------------------
# Exact round-trip identity over the full escapable value space.
#
# The write-ahead delta log (repro.storage.wal) persists update batches
# as N-Triples lines and replays them on restart; the engine it restores
# is only correct if parse ∘ serialize is the identity for *every* term
# the graph can hold — including control characters, Unicode line
# separators, quotes/backslashes, astral-plane text, and datatyped or
# language-tagged literals.
# ----------------------------------------------------------------------

# Everything except surrogates (not encodable to UTF-8); the serializer
# \uXXXX-escapes C0 controls and the Unicode line boundaries.
full_unicode = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60
)
full_literals = st.one_of(
    st.builds(Literal, full_unicode),
    st.builds(
        lambda lex, lang: Literal(lex, language=lang),
        full_unicode,
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=8),
    ),
    st.builds(lambda lex, dt: Literal(lex, datatype=dt), full_unicode, uris),
)
full_triples = st.builds(
    Triple, subjects, uris, st.one_of(uris, bnodes, full_literals)
)


@given(st.lists(full_triples, max_size=12))
@settings(max_examples=200)
def test_ntriples_parse_serialize_parse_identity(items):
    document = serialize_ntriples(items)
    parsed = list(parse_ntriples(document))
    assert parsed == items
    # Idempotence of the full composition: re-serializing what was parsed
    # reproduces the document byte for byte, so a WAL entry survives any
    # number of rewrite cycles unchanged.
    assert serialize_ntriples(parsed) == document
    assert list(parse_ntriples(serialize_ntriples(parsed))) == items


@pytest.mark.parametrize(
    "literal",
    [
        Literal('quote " and backslash \\'),
        Literal("tab\tnewline\ncarriage\rreturn"),
        Literal("null\x00bell\x07escape\x1b"),
        Literal("NEL\x85 LS  PS "),
        Literal("astral 🜁🚀 combining é"),
        Literal("héllo wörld", language="de-AT-1996"),
        Literal("0042", datatype=URI("http://www.w3.org/2001/XMLSchema#integer")),
        Literal("", language="x"),
        Literal(""),
    ],
)
def test_ntriples_tricky_literals_round_trip(literal):
    triple = Triple(URI("ex:s"), URI("ex:p"), literal)
    document = serialize_ntriples([triple])
    assert list(parse_ntriples(document)) == [triple]
    assert serialize_ntriples(list(parse_ntriples(document))) == document


@given(st.lists(triples, max_size=30))
@settings(max_examples=100)
def test_datagraph_vertex_sets_disjoint(items):
    graph = DataGraph(items)
    classes = graph.classes
    entities = graph.entities
    assert not (classes & entities)
    # Values are literals and can never collide with URI/BNode sets.
    assert all(v.is_literal for v in graph.values)


@given(st.lists(triples, max_size=30))
@settings(max_examples=100)
def test_datagraph_type_structure_consistent(items):
    graph = DataGraph(items)
    for cls in graph.classes:
        for entity in graph.instances_of(cls):
            assert cls in graph.types_of(entity)
    for entity in graph.entities:
        for cls in graph.types_of(entity):
            assert entity in graph.instances_of(cls)


@given(st.lists(triples, max_size=30))
@settings(max_examples=100)
def test_datagraph_add_idempotent(items):
    graph = DataGraph(items)
    size = len(graph)
    graph.add_all(items)
    assert len(graph) == size


@given(st.lists(triples, max_size=25))
@settings(max_examples=100)
def test_store_count_matches_match(items):
    from repro.store.triple_store import TripleStore

    store = TripleStore(items)
    for triple in items[:5]:
        patterns = [
            (triple.subject, None, None),
            (None, triple.predicate, None),
            (None, None, triple.object),
            (triple.subject, triple.predicate, None),
            (None, triple.predicate, triple.object),
            (triple.subject, None, triple.object),
        ]
        for s, p, o in patterns:
            assert store.count(s, p, o) == len(list(store.match(s, p, o)))


@given(st.lists(triples, max_size=25))
@settings(max_examples=100)
def test_vertical_store_agrees_with_spo_store(items):
    from repro.store.triple_store import TripleStore
    from repro.store.vertical import VerticalStore

    spo = TripleStore(items)
    vertical = VerticalStore(items)
    assert len(vertical) == len(spo)
    for triple in items[:5]:
        patterns = [
            (triple.subject, None, None),
            (None, triple.predicate, None),
            (None, None, triple.object),
            (triple.subject, triple.predicate, None),
            (None, triple.predicate, triple.object),
        ]
        for s, p, o in patterns:
            assert set(vertical.match(s, p, o)) == set(spo.match(s, p, o))
            assert vertical.count(s, p, o) == spo.count(s, p, o)
