"""Property: the out-of-core build ≡ the in-memory build, byte for byte.

``repro build --stream`` (storage.stream_build) constructs the bundle
from a triple iterator with external sorts and disk spills, never
holding the corpus or its index in memory at once.  The contract is
*identity*, not similarity: for the same triples the streamed bundle
must load to an engine whose formal snapshot keys
``(SummaryGraph.snapshot_key, KeywordIndex.snapshot_key)`` and whose
full ``search()`` output — candidates, costs, renderings, matching
subgraphs, exploration diagnostics — equal the engine built in memory.

The spill machinery is exercised for real: a deliberately tiny spill
budget forces the postings sort through multiple on-disk runs and a
k-way merge (asserted via the builder's run counter), so the identity
holds *because of* the merge path, not by staying under budget.
"""

import pytest
from hypothesis import given, settings, strategies as st

from test_persistence_identity import (
    assert_engines_identical,
    execute_signature,
    search_signature,
)

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.storage import build_bundle_streaming

#: Small enough that any non-trivial corpus spills (~42 rows per sorter).
TINY_BUDGET = 4096

DBLP_QUERIES = (
    "conference 2005",
    "article john",
    "proceedings title",
    "journal 2003 author",
    "zzz-no-such-keyword title",
)
TAP_QUERIES = ("musician album", "city country", "person name", "company product")
EXAMPLE_QUERIES = ("cimiano 2006", "aifb publication", "article proceedings 2006")


def _streamed_engine(graph, path, **kwargs):
    """Build a bundle out-of-core from the graph's triples, load it."""
    info = build_bundle_streaming(iter(graph.triples), path, **kwargs)
    return KeywordSearchEngine.load(path), info


@pytest.mark.parametrize(
    "fixture_name, queries",
    [
        ("example_graph", EXAMPLE_QUERIES),
        ("dblp_small", DBLP_QUERIES),
        ("tap_small", TAP_QUERIES),
    ],
)
def test_streamed_equals_in_memory(request, tmp_path, fixture_name, queries):
    graph = request.getfixturevalue(fixture_name)
    reference = KeywordSearchEngine(DataGraph(graph.triples))
    loaded, info = _streamed_engine(
        graph, tmp_path / "streamed.reprobundle", spill_budget_bytes=TINY_BUDGET
    )
    # Formal snapshot identity (Section VII's maintained == rebuilt keys).
    assert loaded.summary.snapshot_key == reference.summary.snapshot_key
    assert loaded.keyword_index.snapshot_key == reference.keyword_index.snapshot_key
    # Full behavioral identity, including execute() answer multisets.
    assert_engines_identical(reference, loaded, queries)


def test_tiny_budget_actually_spills(dblp_small, tmp_path):
    """The acceptance gate: identity must hold across >= 2 disk runs."""
    _, info = _streamed_engine(
        dblp_small, tmp_path / "spilled.reprobundle", spill_budget_bytes=TINY_BUDGET
    )
    assert info["postings_runs"] >= 2


#: Sections whose in-memory encoding iterates hash-ordered sets
#: (``store.*`` leaf object-sets) or assigns element/vertex ids in an
#: order the out-of-core pass cannot observe.  For these the contract is
#: *decoded* identity — covered by test_streamed_equals_in_memory — not
#: byte parity; everything else must match byte for byte.
HASH_ORDERED_SECTIONS = frozenset(
    {
        "store.spo",
        "store.pos",
        "store.osp",
        "kindex.vocab",
        "kindex.elements",
        "kindex.postings",
        "kindex.element_terms",
        "summary.vertices",
        "summary.edges",
        # The format-v2 queryable views keyed by vocab/element id inherit
        # the builders' differing id-assignment orders; the views keyed by
        # *term* id (terms.*, store2.*, kindex2.attr_refs/value_refs) are
        # deterministic and stay under the byte-parity contract.
        "kindex2.vocab.offsets",
        "kindex2.vocab.sorted",
        "kindex2.postings.offsets",
        "kindex2.postings.runs",
        "kindex2.elements.sorted",
        "kindex2.element_terms.offsets",
        "kindex2.element_terms.runs",
    }
)


def test_streamed_bundle_bytes_equal_saved_bundle(example_graph, tmp_path):
    """Byte parity on the deterministic sections of the running example.

    The streamed writer orders sections differently (terms last), so
    compare per-section payload bytes through each bundle's own loader
    metadata rather than whole files.
    """
    import json
    import struct

    from repro.storage.bundle import MAGIC

    reference = KeywordSearchEngine(DataGraph(example_graph.triples))
    saved = tmp_path / "saved.reprobundle"
    streamed = tmp_path / "streamed.reprobundle"
    reference.save(saved)
    build_bundle_streaming(iter(example_graph.triples), streamed)

    def sections(path):
        raw = path.read_bytes()
        assert raw[: len(MAGIC)] == MAGIC
        header_len = struct.unpack_from("<I", raw, len(MAGIC) + 4)[0]
        header = json.loads(raw[len(MAGIC) + 8 : len(MAGIC) + 8 + header_len])
        base = len(MAGIC) + 8 + header_len
        base += (-base) % 8
        return {
            s["name"]: raw[base + s["offset"] : base + s["offset"] + s["length"]]
            for s in header["sections"]
        }, header

    saved_sections, saved_header = sections(saved)
    streamed_sections, streamed_header = sections(streamed)
    assert set(saved_sections) == set(streamed_sections)
    deterministic = set(saved_sections) - HASH_ORDERED_SECTIONS
    assert deterministic  # triples, terms, graph.*, substrate, ...
    for name in sorted(deterministic):
        assert streamed_sections[name] == saved_sections[name], name
    # Metadata parity where it matters (the builder tag may differ).
    assert streamed_header["snapshot"] == saved_header["snapshot"]
    assert streamed_header["engine"] == saved_header["engine"]


# ----------------------------------------------------------------------
# Hypothesis: random corpora, including Definition-1 violations
# ----------------------------------------------------------------------

EX = "http://example.org/stream/"
ENTITIES = [URI(EX + f"e{i}") for i in range(6)]
CLASSES = [URI(EX + c) for c in ("Person", "Project", "Article")]
RELATIONS = [URI(EX + r) for r in ("knows", "worksOn")]
ATTRIBUTES = [URI(EX + a) for a in ("name", "year")]
VALUES = [Literal(v) for v in ("alice", "bob", "2006")]
PROP_QUERIES = ("person", "alice", "knows", "name", "2006", "project bob")

any_triple = st.one_of(
    st.builds(lambda e, c: Triple(e, RDF.type, c), st.sampled_from(ENTITIES), st.sampled_from(CLASSES)),
    st.builds(lambda a, b: Triple(a, RDFS.subClassOf, b), st.sampled_from(CLASSES), st.sampled_from(CLASSES)),
    st.builds(Triple, st.sampled_from(ENTITIES), st.sampled_from(RELATIONS), st.sampled_from(ENTITIES)),
    st.builds(Triple, st.sampled_from(ENTITIES), st.sampled_from(ATTRIBUTES), st.sampled_from(VALUES)),
    # Definition-1 violations the graph records as conflicts: they must
    # survive the streamed path identically (stored but unclassified).
    st.builds(lambda e, v: Triple(e, RDF.type, v), st.sampled_from(ENTITIES), st.sampled_from(VALUES)),
    st.builds(lambda e, c: Triple(e, RELATIONS[0], c), st.sampled_from(ENTITIES), st.sampled_from(CLASSES)),
)


@given(triples=st.lists(any_triple, min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_streamed_identity_random_corpora(tmp_path_factory, triples):
    tmp = tmp_path_factory.mktemp("stream-prop")
    path = tmp / "g.reprobundle"
    reference = KeywordSearchEngine(DataGraph(triples))
    build_bundle_streaming(iter(triples), path, spill_budget_bytes=TINY_BUDGET)
    loaded = KeywordSearchEngine.load(path)
    assert loaded.summary.snapshot_key == reference.summary.snapshot_key
    assert loaded.keyword_index.snapshot_key == reference.keyword_index.snapshot_key
    assert sorted(map(repr, loaded.graph.conflicts)) == sorted(
        map(repr, reference.graph.conflicts)
    )
    for query in PROP_QUERIES:
        assert search_signature(loaded, query) == search_signature(reference, query), query
        assert execute_signature(loaded, query) == execute_signature(reference, query), query
