"""Property: vectorized exploration is byte-identical to the scalar path.

The numpy kernels (``repro.core.kernels``) are pure accelerators — same
bound tables, same subgraphs, same diagnostics, bit-for-bit.  The proof
obligation is structural (both compute the same least fixpoint under
IEEE round-to-nearest; see the kernel docstrings), but floating-point
identity arguments rot silently, so this suite re-checks the contract
empirically: on the bundled datasets, on randomized graphs, across
incremental update batches, and through an mmap-backed bundle engine.
"""

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.core.engine import KeywordSearchEngine
from repro.core.exploration import explore_top_k
from repro.datasets import TapConfig, generate_tap, running_example_graph
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.elements import SummaryEdgeKind
from repro.summary.summary_graph import SummaryGraph


def _search_signature(result):
    """Everything the engine computes, not just the ranked queries: the
    byte-identity contract covers diagnostics too."""
    exploration = result.exploration
    diagnostics = None
    if exploration is not None:
        diagnostics = (
            [(sg.elements, sg.cost) for sg in exploration.subgraphs],
            exploration.cursors_created,
            exploration.cursors_popped,
            exploration.cursors_pruned,
            exploration.candidates_offered,
            exploration.terminated_by,
            exploration.max_queue_size,
        )
    return (
        [(c.cost, str(c.query), c.rank) for c in result.candidates],
        result.ignored_keywords,
        diagnostics,
    )


def _engine_pair(graph, **config):
    vectorized = KeywordSearchEngine(graph, use_vectorized=True, **config)
    scalar = KeywordSearchEngine(graph, use_vectorized=False, **config)
    return vectorized, scalar


def _assert_identical(vectorized, scalar, queries):
    for query in queries:
        assert _search_signature(vectorized.search(query)) == _search_signature(
            scalar.search(query)
        ), f"vectorized/scalar divergence on {query!r}"


EXAMPLE_QUERIES = ["cimiano 2006", "aifb article", "cimiano aifb 2006"]
TAP_QUERIES = [
    "business",
    "music person",
    "sport location",
    "person company",
]


@pytest.mark.parametrize("guided", [False, True], ids=["plain", "guided"])
def test_example_dataset_identity(guided):
    vectorized, scalar = _engine_pair(running_example_graph(), guided=guided)
    _assert_identical(vectorized, scalar, EXAMPLE_QUERIES)


@pytest.mark.parametrize("guided", [False, True], ids=["plain", "guided"])
def test_tap_dataset_identity(guided):
    graph = generate_tap(TapConfig(instances_per_class=6))
    vectorized, scalar = _engine_pair(graph, cost_model="c3", k=10, guided=guided)
    _assert_identical(vectorized, scalar, TAP_QUERIES)


def test_bundle_engine_identity(tmp_path):
    """An mmap-backed bundle engine (zero-copy ndarray adoption of the
    CSR sections) must agree with a scalar in-memory build."""
    build_engine = KeywordSearchEngine(running_example_graph(), guided=True)
    path = tmp_path / "example.reprobundle"
    build_engine.save(str(path))
    vectorized = KeywordSearchEngine.load(str(path), use_vectorized=True)
    scalar = KeywordSearchEngine(running_example_graph(), guided=True, use_vectorized=False)
    _assert_identical(vectorized, scalar, EXAMPLE_QUERIES)


# ----------------------------------------------------------------------
# Randomized graphs through the raw exploration entry point
# ----------------------------------------------------------------------


def _build_random_graph(n_vertices, edge_pairs):
    graph = SummaryGraph()
    keys = [
        graph.add_class_vertex(URI(f"c:{i}"), agg_count=1).key
        for i in range(n_vertices)
    ]
    for j, (a, b) in enumerate(edge_pairs):
        graph.add_edge(
            URI(f"e:{j}"),
            SummaryEdgeKind.RELATION,
            keys[a % n_vertices],
            keys[b % n_vertices],
        )
    return graph, keys


@st.composite
def exploration_cases(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    m = draw(st.integers(min_value=1, max_value=3))
    keyword_sets = [
        set(draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2)))
        for _ in range(m)
    ]
    costs = draw(
        st.lists(
            st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]),
            min_size=n + n_edges,
            max_size=n + n_edges,
        )
    )
    k = draw(st.integers(min_value=1, max_value=5))
    guided = draw(st.booleans())
    return n, edges, keyword_sets, costs, k, guided


def _exploration_signature(result):
    return (
        [(sg.elements, sg.cost) for sg in result.subgraphs],
        result.cursors_created,
        result.cursors_popped,
        result.cursors_pruned,
        result.candidates_offered,
        result.terminated_by,
        result.max_queue_size,
    )


@given(exploration_cases())
@settings(max_examples=120, deadline=None)
def test_random_graph_exploration_identity(case):
    n, edges, keyword_indices, cost_choices, k, guided = case
    graph, keys = _build_random_graph(n, edges)
    keyword_sets = [{keys[i] for i in indices} for indices in keyword_indices]
    elements = [v.key for v in graph.vertices] + [e.key for e in graph.edges]
    costs = {
        el: (cost_choices[i] if i < len(cost_choices) else 1.0)
        for i, el in enumerate(elements)
    }
    augmented = AugmentedSummaryGraph(graph, keyword_sets, {})
    vectorized = explore_top_k(
        augmented, costs, k=k, dmax=6, guided=guided, use_vectorized=True
    )
    scalar = explore_top_k(
        augmented, costs, k=k, dmax=6, guided=guided, use_vectorized=False
    )
    assert _exploration_signature(vectorized) == _exploration_signature(scalar)


# ----------------------------------------------------------------------
# Identity across incremental update batches
# ----------------------------------------------------------------------


def _paper_triple(i):
    person = URI(f"http://x.repro/person/p{i}")
    paper = URI(f"http://x.repro/paper/a{i}")
    return [
        Triple(person, RDF.type, URI("http://x.repro/cls/Researcher")),
        Triple(paper, RDF.type, URI("http://x.repro/cls/Article")),
        Triple(person, URI("http://x.repro/rel/author"), paper),
    ]


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=11)),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=25, deadline=None)
def test_identity_survives_update_batches(operations):
    """Apply the same add/remove batches to a vectorized and a scalar
    engine; after every batch both must answer identically (the kernels
    see each new summary version through a fresh substrate).  Each engine
    gets its own graph instance — add/remove mutates the graph in place."""
    vectorized = KeywordSearchEngine(
        running_example_graph(), guided=True, use_vectorized=True
    )
    scalar = KeywordSearchEngine(
        running_example_graph(), guided=True, use_vectorized=False
    )
    for is_add, i in operations:
        batch = _paper_triple(i)
        if is_add:
            vectorized.add_triples(batch)
            scalar.add_triples(batch)
        else:
            vectorized.remove_triples(batch)
            scalar.remove_triples(batch)
        _assert_identical(vectorized, scalar, ["cimiano 2006", "researcher article"])
