"""Differential property test: the optimized evaluator vs. the single-table
oracle (the Fig. 1b/1c execution model).

Random small graphs and random conjunctive queries built over their
vocabulary must produce identical answer sets through both engines — the
index-nested-loop join with dynamic atom ordering is equivalent to the
brute-force self-join.
"""

from hypothesis import given, settings, strategies as st

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.evaluator import QueryEvaluator
from repro.query.sql import to_table_patterns
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.store.single_table import SingleTableStore
from repro.store.triple_store import TripleStore

ENTITIES = [URI(f"e:{i}") for i in range(5)]
PREDICATES = [URI(f"p:{i}") for i in range(3)]
LITERALS = [Literal(v) for v in ("a", "b")]
VARIABLES = [Variable(n) for n in ("x", "y", "z")]

data_triples = st.lists(
    st.builds(
        Triple,
        st.sampled_from(ENTITIES),
        st.sampled_from(PREDICATES),
        st.one_of(st.sampled_from(ENTITIES), st.sampled_from(LITERALS)),
    ),
    min_size=1,
    max_size=15,
)

atom_subjects = st.one_of(st.sampled_from(VARIABLES), st.sampled_from(ENTITIES))
atom_objects = st.one_of(
    st.sampled_from(VARIABLES), st.sampled_from(ENTITIES), st.sampled_from(LITERALS)
)
atoms = st.builds(Atom, st.sampled_from(PREDICATES), atom_subjects, atom_objects)
queries = st.builds(ConjunctiveQuery, st.lists(atoms, min_size=1, max_size=3))


@given(data_triples, queries)
@settings(max_examples=150, deadline=None)
def test_evaluator_agrees_with_single_table_oracle(triples, query):
    evaluator = QueryEvaluator(TripleStore(triples))
    answers = {a.values for a in evaluator.evaluate(query)}

    table = SingleTableStore(triples)
    patterns, projection = to_table_patterns(query)
    oracle = {tuple(row) for row in table.evaluate_self_join(patterns, projection)}

    assert answers == oracle


@given(data_triples, queries)
@settings(max_examples=80, deadline=None)
def test_limit_is_prefix_of_full_evaluation(triples, query):
    evaluator = QueryEvaluator(TripleStore(triples))
    full = evaluator.evaluate(query)
    limited = evaluator.evaluate(query, limit=2)
    assert len(limited) == min(2, len(full))
    assert set(limited) <= set(full)


@given(data_triples, queries)
@settings(max_examples=80, deadline=None)
def test_answers_satisfy_query(triples, query):
    """Definition 3 soundness: substituting an answer (plus some extension)
    into the pattern yields triples of the graph."""
    store = TripleStore(triples)
    evaluator = QueryEvaluator(store)
    for answer in evaluator.evaluate(query):
        binding = answer.as_dict()
        # All variables are distinguished by default, so the substitution
        # must be fully ground and every atom present in the store.
        for atom in query.atoms:
            ground = atom.substitute(binding)
            assert Triple(ground.arg1, ground.predicate, ground.arg2) in store
