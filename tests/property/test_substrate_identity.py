"""Property: substrate exploration ≡ per-query interning, byte for byte.

The version-keyed CSR substrate explores on append-only ids and translates
emitted subgraphs back into the canonical merged id space — the ids a full
per-query interning would have assigned.  The contract is *byte identity*:
for any graph, keyword sets, costs, k, and guided mode, the substrate path
(``use_substrate=True``) and the reference interning
(``use_substrate=False``) must return identical subgraphs — same costs,
same connecting elements, same per-keyword path tuples, same ranking among
equal-cost candidates — and identical exploration diagnostics (the two
runs take exactly the same decisions in the same order).

The second test drives the whole engine pipeline: real keyword lookups,
overlay augmentation (value vertices and A-edges on top of the shared
summary graph), and incremental ``add_triples`` / ``remove_triples``
batches whose version bumps must invalidate the substrate automatically.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.core.exploration import explore_top_k
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.summary.augmentation import AugmentedSummaryGraph, augment
from repro.summary.elements import SummaryEdgeKind
from repro.summary.summary_graph import SummaryGraph

# ----------------------------------------------------------------------
# Part 1: randomized raw summary graphs (no overlay)
# ----------------------------------------------------------------------


@st.composite
def exploration_cases(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    n_edges = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    m = draw(st.integers(min_value=1, max_value=3))
    keyword_sets = [
        set(draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2)))
        for _ in range(m)
    ]
    cost_choices = draw(
        st.lists(
            st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]),
            min_size=n + n_edges,
            max_size=n + n_edges,
        )
    )
    k = draw(st.integers(min_value=1, max_value=5))
    return n, edges, keyword_sets, cost_choices, k


def _bytes_signature(result):
    return [
        (sg.cost, sg.connecting_element, sg.paths, sg.elements)
        for sg in result.subgraphs
    ]


def _diagnostics(result):
    return (
        result.cursors_created,
        result.cursors_popped,
        result.cursors_pruned,
        result.candidates_offered,
        result.terminated_by,
        result.max_queue_size,
    )


def _assert_identical(augmented, costs, k, guided=False):
    substrate = explore_top_k(augmented, costs, k=k, dmax=6, guided=guided, use_substrate=True)
    reference = explore_top_k(augmented, costs, k=k, dmax=6, guided=guided, use_substrate=False)
    assert _bytes_signature(substrate) == _bytes_signature(reference)
    assert _diagnostics(substrate) == _diagnostics(reference)


@given(exploration_cases(), st.booleans())
@settings(max_examples=120, deadline=None)
def test_substrate_matches_reference_on_random_graphs(case, guided):
    n, edges, keyword_indices, cost_choices, k = case
    graph = SummaryGraph()
    keys = [graph.add_class_vertex(URI(f"c:{i}"), agg_count=1).key for i in range(n)]
    for j, (a, b) in enumerate(edges):
        graph.add_edge(
            URI(f"e:{j}"), SummaryEdgeKind.RELATION, keys[a % n], keys[b % n]
        )
    keyword_sets = [{keys[i] for i in indices} for indices in keyword_indices]
    elements = [v.key for v in graph.vertices] + [e.key for e in graph.edges]
    costs = {
        el: (cost_choices[i] if i < len(cost_choices) else 1.0)
        for i, el in enumerate(elements)
    }
    augmented = AugmentedSummaryGraph(graph, [set(ks) for ks in keyword_sets], {})
    _assert_identical(augmented, costs, k, guided=guided)


# ----------------------------------------------------------------------
# Part 2: the full pipeline — overlay augmentation + index maintenance
# ----------------------------------------------------------------------

EX = "http://example.org/sub/"
ENTITIES = [URI(EX + f"e{i}") for i in range(5)]
CLASSES = [URI(EX + c) for c in ("Person", "Project", "Article")]
RELATIONS = [URI(EX + r) for r in ("knows", "worksOn")]
ATTRIBUTES = [URI(EX + a) for a in ("name", "year")]
VALUES = [Literal(v) for v in ("alice", "bob", "2006")]

#: Queries spanning class, relation, attribute, and value matches — the
#: value/attribute ones force overlay elements (V-vertices, A-edges).
QUERIES = ("person", "alice knows", "name 2006", "project bob", "year article")

type_triples = st.builds(
    lambda e, c: Triple(e, RDF.type, c),
    st.sampled_from(ENTITIES),
    st.sampled_from(CLASSES),
)
subclass_triples = st.builds(
    lambda a, b: Triple(a, RDFS.subClassOf, b),
    st.sampled_from(CLASSES),
    st.sampled_from(CLASSES),
)
relation_triples = st.builds(
    Triple,
    st.sampled_from(ENTITIES),
    st.sampled_from(RELATIONS),
    st.sampled_from(ENTITIES),
)
attribute_triples = st.builds(
    Triple,
    st.sampled_from(ENTITIES),
    st.sampled_from(ATTRIBUTES),
    st.sampled_from(VALUES),
)
any_triple = st.one_of(
    type_triples, subclass_triples, relation_triples, attribute_triples
)

batches = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.lists(any_triple, min_size=1, max_size=4),
    ),
    min_size=1,
    max_size=5,
)


def _assert_engine_identity(engine, guided):
    for query in QUERIES:
        matches = [m for m in engine.keyword_index.lookup_all(query.split()) if m]
        if not matches:
            continue
        augmented = augment(engine.summary, matches)
        costs = engine.cost_model.element_costs(augmented)
        _assert_identical(augmented, costs, k=5, guided=guided)


@given(
    initial=st.lists(any_triple, min_size=3, max_size=15),
    batches=batches,
    guided=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_substrate_matches_reference_through_maintenance(initial, batches, guided):
    engine = KeywordSearchEngine(DataGraph(initial), cost_model="c3", k=5)
    _assert_engine_identity(engine, guided)

    for op, triples in batches:
        if op == "add":
            engine.add_triples(triples)
        else:
            engine.remove_triples(triples)
        # The version bump must have invalidated the substrate: both paths
        # agree on the *updated* graph, including overlay augmentation.
        _assert_engine_identity(engine, guided)
