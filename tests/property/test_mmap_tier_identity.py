"""Property: the mmap serving tier ≡ the materialized tier, byte for byte.

``load(path, index_tier="mmap")`` serves the keyword index and triple
store straight off the format-v2 queryable sections — binary-searched
term dictionary, contiguous posting runs, sorted triple runs — without
ever materializing the Python dicts.  The contract is *identity*, not
similarity: for every query, ``search()`` (candidates, costs, SPARQL/SQL
/NL renderings, matching subgraphs, exploration diagnostics) and
``execute()`` answer multisets must equal the materialized engine's,
including after update epochs that overlay deltas on the read-only
mmap postings and through a WAL-tail replay.
"""

import pytest
from hypothesis import given, settings, strategies as st

from test_persistence_identity import (
    DBLP_QUERIES,
    EXAMPLE_QUERIES,
    TAP_QUERIES,
    assert_engines_identical,
    execute_signature,
    search_signature,
)
from test_stream_build_identity import PROP_QUERIES, TINY_BUDGET, any_triple

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.storage import build_bundle_streaming
from repro.storage.errors import UnsupportedEngineError


def _both_tiers(engine, path):
    """Save the engine, load it back on both serving tiers (no WAL)."""
    engine.save(path, force=True)
    memory = KeywordSearchEngine.load(path, attach_wal=False)
    mapped = KeywordSearchEngine.load(path, attach_wal=False, index_tier="mmap")
    return memory, mapped


@pytest.mark.parametrize(
    "fixture_name, queries",
    [
        ("example_graph", EXAMPLE_QUERIES),
        ("dblp_small", DBLP_QUERIES),
        ("tap_small", TAP_QUERIES),
    ],
)
def test_mmap_tier_equals_materialized(request, tmp_path, fixture_name, queries):
    graph = request.getfixturevalue(fixture_name)
    reference = KeywordSearchEngine(DataGraph(graph.triples))
    memory, mapped = _both_tiers(reference, tmp_path / "b.reprobundle")
    assert mapped.index_tier == "mmap"
    assert mapped.keyword_index.index_tier == "mmap"
    assert len(mapped.store) == len(reference.store)
    assert_engines_identical(reference, mapped, queries)
    assert_engines_identical(memory, mapped, queries)


def test_mmap_tier_on_streamed_bundle(dblp_small, tmp_path):
    """The out-of-core *build* path feeds the out-of-core *serving* path:
    a --stream bundle (tiny spill budget, so the merge machinery runs)
    must serve identically through the mmap tier."""
    triples = list(dblp_small.triples)
    path = tmp_path / "s.reprobundle"
    build_bundle_streaming(iter(triples), path, spill_budget_bytes=TINY_BUDGET)
    reference = KeywordSearchEngine(DataGraph(triples))
    mapped = KeywordSearchEngine.load(path, attach_wal=False, index_tier="mmap")
    assert_engines_identical(reference, mapped, DBLP_QUERIES)


def test_mmap_tier_update_epoch_identity(dblp_small, tmp_path):
    """Updates overlay the read-only mmap sections: after identical
    add/remove epochs both tiers must still agree with each other *and*
    with an engine rebuilt from scratch on the final triple set."""
    triples = list(dblp_small.triples)
    engine = KeywordSearchEngine(DataGraph(triples))
    memory, mapped = _both_tiers(engine, tmp_path / "u.reprobundle")

    ns = "http://example.org/mmapprop/"
    added = [
        Triple(URI(ns + "p1"), RDF.type, URI("http://example.org/dblp/Article")),
        Triple(
            URI(ns + "p1"),
            URI("http://purl.org/dc/elements/1.1/title"),
            Literal("Mmap Overlay Paper"),
        ),
        Triple(URI(ns + "p1"), URI("http://example.org/dblp/year"), Literal("2008")),
    ]
    removed = triples[40:50]
    for eng in (memory, mapped):
        assert eng.add_triples(added) == len(added)
        assert eng.remove_triples(removed) == len(removed)

    final = [t for t in triples if t not in set(removed)] + added
    rebuilt = KeywordSearchEngine(DataGraph(final))
    queries = DBLP_QUERIES + ("mmap overlay paper", "2008 article")
    assert len(mapped.store) == len(rebuilt.store)
    assert_engines_identical(memory, mapped, queries)
    assert_engines_identical(rebuilt, mapped, queries)


def test_mmap_tier_wal_tail_replay_identity(dblp_small, tmp_path):
    """A WAL tail written by one engine replays identically into a fresh
    mmap-tier load: deltas land in the overlay, the mapped base stays
    untouched, and both tiers reconstruct the same post-crash state."""
    triples = list(dblp_small.triples)
    engine = KeywordSearchEngine(DataGraph(triples))
    path = tmp_path / "w.reprobundle"
    engine.save(path)

    ns = "http://example.org/mmapwal/"
    added = [
        Triple(URI(ns + "p2"), RDF.type, URI("http://example.org/dblp/Article")),
        Triple(
            URI(ns + "p2"),
            URI("http://purl.org/dc/elements/1.1/title"),
            Literal("Tail Replayed Paper"),
        ),
    ]
    removed = triples[10:16]
    writer = KeywordSearchEngine.load(path)
    assert writer.add_triples(added) == len(added)
    assert writer.remove_triples(removed) == len(removed)
    writer.delta_log.close()  # release the single-writer lock ("crash")

    memory = KeywordSearchEngine.load(path, attach_wal=False)
    mapped = KeywordSearchEngine.load(path, attach_wal=False, index_tier="mmap")
    assert mapped.artifact["wal_epochs_replayed"] == 2
    queries = DBLP_QUERIES + ("tail replayed paper",)
    assert_engines_identical(writer, mapped, queries)
    assert_engines_identical(memory, mapped, queries)


def test_v1_bundle_mmap_tier_refused_loudly(example_graph, tmp_path):
    """A version-1 bundle lacks the queryable sections: the mmap tier
    must refuse with a rebuild hint, while the default tier still loads
    and serves the old layout identically."""
    reference = KeywordSearchEngine(DataGraph(example_graph.triples))
    path = tmp_path / "v1.reprobundle"
    reference.save(path, format_version=1)

    with pytest.raises(UnsupportedEngineError, match="rebuild with `repro build`"):
        KeywordSearchEngine.load(path, attach_wal=False, index_tier="mmap")

    loaded = KeywordSearchEngine.load(path, attach_wal=False)
    assert loaded.index_tier == "memory"
    assert_engines_identical(reference, loaded, EXAMPLE_QUERIES)


# ----------------------------------------------------------------------
# Hypothesis: random corpora through the streamed build + mmap serve
# ----------------------------------------------------------------------


@given(triples=st.lists(any_triple, min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_mmap_identity_random_corpora(tmp_path_factory, triples):
    tmp = tmp_path_factory.mktemp("mmap-prop")
    path = tmp / "g.reprobundle"
    reference = KeywordSearchEngine(DataGraph(triples))
    build_bundle_streaming(iter(triples), path, spill_budget_bytes=TINY_BUDGET)
    mapped = KeywordSearchEngine.load(path, attach_wal=False, index_tier="mmap")
    assert len(mapped.store) == len(reference.store)
    for query in PROP_QUERIES:
        assert search_signature(mapped, query) == search_signature(reference, query), query
        assert execute_signature(mapped, query) == execute_signature(reference, query), query
