"""Property tests for query-layer invariants."""

from hypothesis import given, settings, strategies as st

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.isomorphism import canonical_form, queries_isomorphic
from repro.query.sparql import parse_sparql, to_sparql
from repro.rdf.terms import Literal, URI, Variable

PREDICATES = [URI(f"p:{i}") for i in range(3)]
CONSTANT_URIS = [URI(f"e:{i}") for i in range(3)]
LITERALS = [Literal(v) for v in ("a", "b")]
VARIABLES = [Variable(n) for n in ("x", "y", "z", "u")]

atom_subjects = st.one_of(st.sampled_from(VARIABLES), st.sampled_from(CONSTANT_URIS))
atom_objects = st.one_of(
    st.sampled_from(VARIABLES),
    st.sampled_from(CONSTANT_URIS),
    st.sampled_from(LITERALS),
)
atoms = st.builds(Atom, st.sampled_from(PREDICATES), atom_subjects, atom_objects)
queries = st.builds(ConjunctiveQuery, st.lists(atoms, min_size=1, max_size=4))


def rename(query: ConjunctiveQuery, suffix: str) -> ConjunctiveQuery:
    mapping = {v: Variable(v.name + suffix) for v in query.variables}
    new_atoms = [a.substitute(mapping) for a in query.atoms]
    return ConjunctiveQuery(
        new_atoms, distinguished=[mapping[v] for v in query.distinguished]
    )


@given(queries)
@settings(max_examples=150)
def test_isomorphic_to_renamed_self(query):
    renamed = rename(query, "_r")
    assert queries_isomorphic(query, renamed)
    assert queries_isomorphic(query, renamed, check_distinguished=True)


@given(queries)
@settings(max_examples=150)
def test_canonical_form_invariant_under_renaming(query):
    assert canonical_form(query) == canonical_form(rename(query, "_r"))


@given(queries, queries)
@settings(max_examples=150)
def test_isomorphism_symmetric(q1, q2):
    assert queries_isomorphic(q1, q2) == queries_isomorphic(q2, q1)


@given(queries, queries)
@settings(max_examples=150)
def test_canonical_form_necessary_for_isomorphism(q1, q2):
    # iso ⇒ equal canonical forms (the converse may fail on symmetric queries).
    if queries_isomorphic(q1, q2):
        assert canonical_form(q1) == canonical_form(q2)


@given(queries)
@settings(max_examples=150)
def test_sparql_round_trip_isomorphic(query):
    parsed = parse_sparql(to_sparql(query))
    # Round-trip preserves the query exactly (same variable names).
    assert parsed == query


@given(queries)
@settings(max_examples=100)
def test_variables_superset_of_distinguished(query):
    assert set(query.distinguished) <= set(query.variables)
    assert set(query.undistinguished) == set(query.variables) - set(query.distinguished)
