"""Property tests for the Levenshtein implementation."""

from hypothesis import given, settings, strategies as st

from repro.keyword.levenshtein import levenshtein, similarity

words = st.text(alphabet="abcdef", max_size=12)


@given(words, words)
@settings(max_examples=200)
def test_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@given(words)
def test_identity(a):
    assert levenshtein(a, a) == 0


@given(words, words)
def test_upper_bound_max_length(a, b):
    assert levenshtein(a, b) <= max(len(a), len(b))


@given(words, words)
def test_lower_bound_length_difference(a, b):
    assert levenshtein(a, b) >= abs(len(a) - len(b))


@given(words, words, words)
@settings(max_examples=100)
def test_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(words, st.text(alphabet="abcdef", min_size=1, max_size=3), st.integers(0, 11))
def test_single_insertion_costs_one(a, insert, pos):
    pos = min(pos, len(a))
    b = a[:pos] + insert[0] + a[pos:]
    assert levenshtein(a, b) == 1


@given(words, words, st.integers(min_value=0, max_value=6))
def test_bounded_agrees_with_exact_within_bound(a, b, bound):
    exact = levenshtein(a, b)
    bounded = levenshtein(a, b, max_distance=bound)
    if exact <= bound:
        assert bounded == exact
    else:
        assert bounded == bound + 1


@given(words, words)
def test_similarity_in_unit_interval(a, b):
    s = similarity(a, b)
    assert 0.0 <= s <= 1.0


@given(words)
def test_similarity_identity(a):
    assert similarity(a, a) == 1.0
