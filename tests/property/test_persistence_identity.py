"""Property: a bundle-loaded engine ≡ the engine that was saved ≡ a rebuild.

The persistence contract extends PR 1's maintained == rebuilt guarantee
to disk: for any engine, ``KeywordSearchEngine.load(save(engine))`` must
produce **byte-identical** ``search()`` output — candidate queries in
canonical form, costs, ranks, renderings (SPARQL/SQL/NL), matching
subgraphs (connecting element, paths, element sets), keyword matches,
and the exploration diagnostics — and ``execute()`` must return the same
answer multiset (answer *order* over hash sets was never part of the
engine's canonicalized surface).

The guarantee must also hold *through the write-ahead delta log*: after
updates against a loaded engine, a fresh ``load`` that replays the WAL
tail must equal both the live updated engine and a from-scratch rebuild
over the final triple set.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.query.isomorphism import canonical_form
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

# ----------------------------------------------------------------------
# Byte-level search-output signatures
# ----------------------------------------------------------------------


def _subgraph_signature(subgraph):
    return (
        repr(subgraph.connecting_element),
        tuple(tuple(map(repr, path)) for path in subgraph.paths),
        tuple(sorted(map(repr, subgraph.elements))),
        subgraph.cost,
    )


def _exploration_signature(exploration):
    if exploration is None:
        return None
    return (
        exploration.cursors_created,
        exploration.cursors_popped,
        exploration.cursors_pruned,
        exploration.candidates_offered,
        exploration.terminated_by,
        exploration.max_queue_size,
        tuple(_subgraph_signature(s) for s in exploration.subgraphs),
    )


def search_signature(engine, query, **kwargs):
    """Everything a search returns, exactly (timings excepted)."""
    result = engine.search(query, **kwargs)
    return (
        tuple(result.keywords),
        tuple(result.ignored_keywords),
        tuple(tuple(map(repr, matches)) for matches in result.matches),
        tuple(
            (
                canonical_form(c.query),
                str(c.query),
                c.cost,
                c.rank,
                c.to_sparql(),
                c.to_sql(),
                c.verbalize(),
                _subgraph_signature(c.subgraph),
            )
            for c in result.candidates
        ),
        _exploration_signature(result.exploration),
    )


def execute_signature(engine, query):
    """Answer multiset of the best candidate (order is not canonical)."""
    best = engine.search(query).best()
    if best is None:
        return None
    return sorted(str(answer) for answer in engine.execute(best))


def assert_engines_identical(reference, other, queries):
    for query in queries:
        assert search_signature(reference, query) == search_signature(other, query), query
        assert execute_signature(reference, query) == execute_signature(other, query), query


# ----------------------------------------------------------------------
# Fixture-based identity: DBLP and TAP, per the acceptance criteria
# ----------------------------------------------------------------------

DBLP_QUERIES = (
    "conference 2005",
    "article john",
    "proceedings title",
    "journal 2003 author",
    "zzz-no-such-keyword title",
)
TAP_QUERIES = ("musician album", "city country", "person name", "company product")
EXAMPLE_QUERIES = ("cimiano 2006", "aifb publication", "article proceedings 2006")


@pytest.mark.parametrize(
    "fixture_name, queries",
    [
        ("example_graph", EXAMPLE_QUERIES),
        ("dblp_small", DBLP_QUERIES),
        ("tap_small", TAP_QUERIES),
    ],
)
def test_load_save_round_trip_identity(request, tmp_path, fixture_name, queries):
    graph = request.getfixturevalue(fixture_name)
    engine = KeywordSearchEngine(DataGraph(graph.triples))
    path = tmp_path / "engine.reprobundle"
    engine.save(path)
    loaded = KeywordSearchEngine.load(path)
    assert_engines_identical(engine, loaded, queries)
    # The formal snapshot-key pair and epoch survive the round trip.
    assert loaded.summary.snapshot_key == engine.summary.snapshot_key
    assert loaded.keyword_index.snapshot_key == engine.keyword_index.snapshot_key
    assert loaded.index_manager.epoch == engine.index_manager.epoch


@pytest.mark.parametrize("lazy", [True, False])
def test_lazy_and_eager_loads_identical(dblp_small, tmp_path, lazy):
    engine = KeywordSearchEngine(DataGraph(dblp_small.triples))
    path = tmp_path / "engine.reprobundle"
    engine.save(path)
    loaded = KeywordSearchEngine.load(path, lazy=lazy)
    assert_engines_identical(engine, loaded, DBLP_QUERIES[:2])
    # Structural equality of the materialized offline layer.
    loaded.graph._materialize() if lazy else None
    assert set(loaded.graph.triples) == set(engine.graph.triples)
    assert loaded.graph.stats() == engine.graph.stats()
    assert len(loaded.store) == len(engine.store)


def test_wal_tail_replay_identity(dblp_small, tmp_path):
    """save → load → update → reload must equal live and rebuilt engines."""
    triples = list(dblp_small.triples)
    engine = KeywordSearchEngine(DataGraph(triples))
    path = tmp_path / "engine.reprobundle"
    engine.save(path)

    ns = "http://example.org/walprop/"
    added = [
        Triple(URI(ns + "p1"), RDF.type, URI("http://example.org/dblp/Article")),
        Triple(URI(ns + "p1"), URI("http://purl.org/dc/elements/1.1/title"), Literal("Delta Logged Paper")),
        Triple(URI(ns + "p1"), URI("http://example.org/dblp/year"), Literal("2008")),
    ]
    removed = triples[50:60]

    live = KeywordSearchEngine.load(path)
    assert live.add_triples(added) == len(added)
    assert live.remove_triples(removed) == len(removed)
    assert os.path.exists(f"{path}.wal")

    live.delta_log.close()  # release the single-writer lock ("crash")
    reloaded = KeywordSearchEngine.load(path)
    assert reloaded.artifact["wal_epochs_replayed"] == 2
    assert reloaded.index_manager.epoch == live.index_manager.epoch

    final = [t for t in triples if t not in set(removed)] + added
    rebuilt = KeywordSearchEngine(DataGraph(final))

    queries = DBLP_QUERIES + ("delta logged paper", "2008 article")
    assert_engines_identical(live, reloaded, queries)
    assert_engines_identical(rebuilt, reloaded, queries)


# ----------------------------------------------------------------------
# Hypothesis: random update batches through the WAL
# ----------------------------------------------------------------------

EX = "http://example.org/persist/"
ENTITIES = [URI(EX + f"e{i}") for i in range(5)]
CLASSES = [URI(EX + c) for c in ("Person", "Project", "Article")]
RELATIONS = [URI(EX + r) for r in ("knows", "worksOn")]
ATTRIBUTES = [URI(EX + a) for a in ("name", "year")]
VALUES = [Literal(v) for v in ("alice", "bob", "2006")]
PROP_QUERIES = ("person", "alice", "knows", "name", "2006", "project bob")

any_triple = st.one_of(
    st.builds(lambda e, c: Triple(e, RDF.type, c), st.sampled_from(ENTITIES), st.sampled_from(CLASSES)),
    st.builds(lambda a, b: Triple(a, RDFS.subClassOf, b), st.sampled_from(CLASSES), st.sampled_from(CLASSES)),
    st.builds(Triple, st.sampled_from(ENTITIES), st.sampled_from(RELATIONS), st.sampled_from(ENTITIES)),
    st.builds(Triple, st.sampled_from(ENTITIES), st.sampled_from(ATTRIBUTES), st.sampled_from(VALUES)),
)
batches = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.lists(any_triple, min_size=1, max_size=4),
    ),
    min_size=1,
    max_size=6,
)


@given(initial=st.lists(any_triple, min_size=3, max_size=15), updates=batches)
@settings(max_examples=25, deadline=None)
def test_wal_replay_random_batches(tmp_path_factory, initial, updates):
    tmp = tmp_path_factory.mktemp("wal-prop")
    path = tmp / "engine.reprobundle"
    engine = KeywordSearchEngine(DataGraph(initial))
    engine.save(path, force=True)

    live = KeywordSearchEngine.load(path)
    for action, batch in updates:
        if action == "add":
            live.add_triples(batch)
        else:
            live.remove_triples(batch)

    live.delta_log.close()  # release the single-writer lock ("crash")
    reloaded = KeywordSearchEngine.load(path)
    assert reloaded.index_manager.epoch == live.index_manager.epoch
    rebuilt = KeywordSearchEngine(DataGraph(live.graph.triples))
    for query in PROP_QUERIES:
        live_sig = search_signature(live, query)
        assert search_signature(reloaded, query) == live_sig, query
        assert search_signature(rebuilt, query) == live_sig, query
