"""Property: guided and unguided exploration return identical results.

Guided mode (the Section VI-A/IX "indexing connectivity" speed-up) prunes
cursors through admissible completion bounds; because the bounds only ever
*under*estimate, pruning may change the work but never the answer.  On
randomized graphs, keyword sets, costs, and k, both modes must return the
same ranked sequence of subgraph element sets with the same costs — not
just the same cost multiset (complements ``benchmarks/test_ablation_guarantee.py``,
which measures the work difference on the paper workloads).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exploration import explore_top_k
from repro.rdf.terms import URI
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.elements import SummaryEdgeKind
from repro.summary.summary_graph import SummaryGraph


def build_random_graph(n_vertices, edge_pairs):
    graph = SummaryGraph()
    keys = [
        graph.add_class_vertex(URI(f"c:{i}"), agg_count=1).key
        for i in range(n_vertices)
    ]
    for j, (a, b) in enumerate(edge_pairs):
        graph.add_edge(
            URI(f"e:{j}"),
            SummaryEdgeKind.RELATION,
            keys[a % n_vertices],
            keys[b % n_vertices],
        )
    return graph, keys


@st.composite
def exploration_cases(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    n_edges = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    m = draw(st.integers(min_value=1, max_value=3))
    keyword_sets = [
        set(draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2)))
        for _ in range(m)
    ]
    cost_choices = draw(
        st.lists(
            st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]),
            min_size=n + n_edges,
            max_size=n + n_edges,
        )
    )
    k = draw(st.integers(min_value=1, max_value=5))
    return n, edges, keyword_sets, cost_choices, k


def _signature(result):
    return [(sg.elements, pytest.approx(sg.cost)) for sg in result.subgraphs]


@given(exploration_cases())
@settings(max_examples=150, deadline=None)
def test_guided_and_unguided_return_identical_results(case):
    n, edges, keyword_indices, cost_choices, k = case
    graph, keys = build_random_graph(n, edges)
    keyword_sets = [{keys[i] for i in indices} for indices in keyword_indices]

    elements = [v.key for v in graph.vertices] + [e.key for e in graph.edges]
    costs = {
        el: (cost_choices[i] if i < len(cost_choices) else 1.0)
        for i, el in enumerate(elements)
    }

    augmented = AugmentedSummaryGraph(graph, [set(ks) for ks in keyword_sets], {})
    plain = explore_top_k(augmented, costs, k=k, dmax=6, guided=False)
    guided = explore_top_k(augmented, costs, k=k, dmax=6, guided=True)

    assert _signature(guided) == _signature(plain)
    # Guided pruning is monotone: it never expands more cursors.
    assert guided.cursors_created <= plain.cursors_created
