"""Property: incremental index maintenance ≡ rebuild from scratch.

For random sequences of triple additions and removals applied through
``KeywordSearchEngine.add_triples`` / ``remove_triples`` (which propagate
deltas through the data graph, keyword index, summary graph, and triple
store via the :class:`~repro.maintenance.IndexManager`), the engine must
return *identical* top-k candidates — same canonical query forms, same
costs, same ranks — as a fresh engine rebuilt over the final triple set.

This is the correctness contract that makes live updates safe: no derived
structure may drift from what a full offline rebuild would produce.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.query.isomorphism import canonical_form
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

EX = "http://example.org/inc/"
ENTITIES = [URI(EX + f"e{i}") for i in range(5)]
CLASSES = [URI(EX + c) for c in ("Person", "Project", "Article")]
RELATIONS = [URI(EX + r) for r in ("knows", "worksOn")]
ATTRIBUTES = [URI(EX + a) for a in ("name", "year")]
VALUES = [Literal(v) for v in ("alice", "bob", "2006")]

#: Keyword queries covering every element kind the index serves: classes,
#: relations, attributes, values, and multi-keyword combinations.
QUERIES = ("person", "alice", "knows", "name", "2006", "project bob", "year article")

type_triples = st.builds(
    lambda e, c: Triple(e, RDF.type, c),
    st.sampled_from(ENTITIES),
    st.sampled_from(CLASSES),
)
subclass_triples = st.builds(
    lambda a, b: Triple(a, RDFS.subClassOf, b),
    st.sampled_from(CLASSES),
    st.sampled_from(CLASSES),
)
relation_triples = st.builds(
    Triple,
    st.sampled_from(ENTITIES),
    st.sampled_from(RELATIONS),
    st.sampled_from(ENTITIES),
)
attribute_triples = st.builds(
    Triple,
    st.sampled_from(ENTITIES),
    st.sampled_from(ATTRIBUTES),
    st.sampled_from(VALUES),
)
any_triple = st.one_of(
    type_triples, subclass_triples, relation_triples, attribute_triples
)

#: An update batch: add or remove a handful of triples at once.
batches = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), st.lists(any_triple, min_size=1, max_size=4)),
    min_size=1,
    max_size=8,
)


def _signature(engine, query):
    result = engine.search(query)
    return [
        (canonical_form(c.query), round(c.cost, 9), c.rank) for c in result.candidates
    ]


def _assert_equivalent(maintained, rebuilt):
    for query in QUERIES:
        assert _signature(maintained, query) == _signature(rebuilt, query), query


@given(initial=st.lists(any_triple, max_size=15), batches=batches)
@settings(max_examples=75, deadline=None)
def test_incremental_maintenance_matches_rebuild(initial, batches):
    engine = KeywordSearchEngine(DataGraph(initial), cost_model="c3", k=5)
    current = dict.fromkeys(initial)

    for op, triples in batches:
        if op == "add":
            engine.add_triples(triples)
            current.update(dict.fromkeys(triples))
        else:
            engine.remove_triples(triples)
            for t in triples:
                current.pop(t, None)

    rebuilt = KeywordSearchEngine(DataGraph(current), cost_model="c3", k=5)
    _assert_equivalent(engine, rebuilt)

    # The mirrored triple store must match exactly as well.
    assert len(engine.store) == len(rebuilt.store)
    assert set(engine.store.match()) == set(rebuilt.store.match())
    assert engine.graph.stats() == rebuilt.graph.stats()
    assert engine.summary.stats()["vertices"] == rebuilt.summary.stats()["vertices"]
    assert engine.summary.stats()["edges"] == rebuilt.summary.stats()["edges"]


@given(initial=st.lists(any_triple, min_size=3, max_size=15), batches=batches)
@settings(max_examples=15, deadline=None)
def test_remove_everything_then_readd_roundtrips(initial, batches):
    """Draining the graph and re-adding the same triples restores results."""
    engine = KeywordSearchEngine(DataGraph(initial), cost_model="c3", k=5)
    before = {q: _signature(engine, q) for q in QUERIES}

    triples = list(engine.graph.triples)
    engine.remove_triples(triples)
    assert len(engine.graph) == 0
    assert len(engine.store) == 0
    for q in QUERIES:
        assert _signature(engine, q) == []

    engine.add_triples(triples)
    for q in QUERIES:
        assert _signature(engine, q) == before[q]


@given(initial=st.lists(any_triple, max_size=12), extra=st.lists(any_triple, min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_duplicate_and_absent_deltas_are_noops(initial, extra):
    """Adding present triples / removing absent ones changes nothing."""
    engine = KeywordSearchEngine(DataGraph(initial), cost_model="c3", k=5)
    present = list(engine.graph.triples)
    absent = [t for t in extra if t not in engine.graph]

    assert engine.add_triples(present) == 0
    assert engine.remove_triples(absent) == 0
    rebuilt = KeywordSearchEngine(DataGraph(present), cost_model="c3", k=5)
    _assert_equivalent(engine, rebuilt)
