"""Unit tests for lexical analysis."""

from repro.keyword.analysis import Analyzer, STOPWORDS, tokenize


class TestTokenize:
    def test_lowercase_words(self):
        assert tokenize("Keyword Search") == ["keyword", "search"]

    def test_camel_case_split(self):
        assert tokenize("worksAt") == ["works", "at"]
        assert tokenize("hasProject") == ["has", "project"]

    def test_letter_digit_boundary(self):
        assert tokenize("year2006") == ["year", "2006"]
        assert tokenize("2006year") == ["2006", "year"]

    def test_punctuation_separates(self):
        assert tokenize("X-Media") == ["x", "media"]
        assert tokenize("P. Cimiano") == ["p", "cimiano"]

    def test_pure_numbers_kept(self):
        assert tokenize("2006") == ["2006"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   --- ") == []


class TestAnalyzer:
    def test_stopwords_removed(self):
        analyzer = Analyzer()
        assert analyzer.analyze("the search of graphs") == [
            "search",
            "graph",
        ]

    def test_stemming_applied(self):
        analyzer = Analyzer()
        assert analyzer.analyze("publications") == analyzer.analyze("publication")

    def test_digits_not_stemmed(self):
        analyzer = Analyzer()
        assert analyzer.analyze("2006") == ["2006"]

    def test_no_stemming_option(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("publications") == ["publications"]

    def test_min_token_length_keeps_digits(self):
        analyzer = Analyzer(min_token_length=2)
        assert analyzer.analyze("a 5 word") == ["5", "word"]

    def test_analyze_unique_preserves_order(self):
        analyzer = Analyzer()
        assert analyzer.analyze_unique("graph graph search graph") == [
            "graph",
            "search",
        ]

    def test_stopword_list_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)
