"""Unit tests for the Algorithm 1 exploration."""

import pytest

from repro.core.exploration import _best_combinations, explore_top_k
from repro.core.cursor import Cursor
from repro.rdf.terms import URI
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.elements import SummaryEdgeKind
from repro.summary.summary_graph import SummaryGraph


def build_line_graph(n=4, label="p"):
    """Class vertices C0 — C1 — … — C(n-1) joined by relation edges."""
    graph = SummaryGraph()
    keys = []
    for i in range(n):
        vertex = graph.add_class_vertex(URI(f"c:{i}"), agg_count=1)
        keys.append(vertex.key)
    edges = []
    for i in range(n - 1):
        edge = graph.add_edge(
            URI(f"e:{label}{i}"), SummaryEdgeKind.RELATION, keys[i], keys[i + 1]
        )
        edges.append(edge.key)
    return graph, keys, edges


def augmented_for(graph, keyword_elements, scores=None):
    return AugmentedSummaryGraph(
        graph, [set(ks) for ks in keyword_elements], scores or {}
    )


def uniform_costs(graph, cost=1.0):
    out = {v.key: cost for v in graph.vertices}
    out.update({e.key: cost for e in graph.edges})
    return out


class TestBasics:
    def test_two_keywords_on_line(self):
        graph, keys, edges = build_line_graph(3)
        augmented = augmented_for(graph, [[keys[0]], [keys[2]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=1)
        assert len(result.subgraphs) == 1
        sg = result.subgraphs[0]
        # The unique connecting structure is the whole line.
        assert sg.elements == frozenset(keys) | frozenset(edges)
        assert sg.cost == pytest.approx(3.0 + 3.0)  # two paths meeting mid

    def test_single_keyword_returns_cheapest_elements(self):
        graph, keys, _ = build_line_graph(3)
        costs = uniform_costs(graph)
        costs[keys[1]] = 0.5
        augmented = augmented_for(graph, [[keys[0], keys[1]]])
        result = explore_top_k(augmented, costs, k=1)
        assert result.subgraphs[0].elements == frozenset({keys[1]})

    def test_no_keywords(self):
        graph, _, _ = build_line_graph(2)
        result = explore_top_k(augmented_for(graph, []), uniform_costs(graph), k=3)
        assert result.subgraphs == []
        assert result.terminated_by == "no-keywords"

    def test_empty_keyword_sets_skipped(self):
        graph, keys, _ = build_line_graph(3)
        augmented = augmented_for(graph, [[], [keys[0]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=1)
        assert len(result.subgraphs) == 1

    def test_unreachable_keywords_yield_nothing(self):
        graph = SummaryGraph()
        a = graph.add_class_vertex(URI("c:a")).key
        b = graph.add_class_vertex(URI("c:b")).key  # no edges at all
        augmented = augmented_for(graph, [[a], [b]])
        result = explore_top_k(augmented, uniform_costs(graph), k=2)
        assert result.subgraphs == []
        assert result.terminated_by == "exhausted"

    def test_overlapping_keyword_elements(self):
        graph, keys, _ = build_line_graph(2)
        augmented = augmented_for(graph, [[keys[0]], [keys[0]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=1)
        assert result.subgraphs[0].elements == frozenset({keys[0]})


class TestOrderingAndK:
    def test_results_ascending_cost(self):
        graph, keys, _ = build_line_graph(6)
        augmented = augmented_for(graph, [[keys[0]], [keys[5], keys[2]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=5)
        costs = [sg.cost for sg in result.subgraphs]
        assert costs == sorted(costs)

    def test_k_bounds_results(self):
        graph, keys, _ = build_line_graph(6)
        augmented = augmented_for(graph, [[keys[0]], [keys[5]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=3)
        assert len(result.subgraphs) <= 3

    def test_cheaper_costs_win(self):
        # Diamond: two routes from A to C; one strictly cheaper.
        graph = SummaryGraph()
        a = graph.add_class_vertex(URI("c:a")).key
        b1 = graph.add_class_vertex(URI("c:b1")).key
        b2 = graph.add_class_vertex(URI("c:b2")).key
        c = graph.add_class_vertex(URI("c:c")).key
        e1 = graph.add_edge(URI("e:1"), SummaryEdgeKind.RELATION, a, b1).key
        e2 = graph.add_edge(URI("e:2"), SummaryEdgeKind.RELATION, b1, c).key
        e3 = graph.add_edge(URI("e:3"), SummaryEdgeKind.RELATION, a, b2).key
        e4 = graph.add_edge(URI("e:4"), SummaryEdgeKind.RELATION, b2, c).key
        costs = uniform_costs(graph)
        costs[b2] = 5.0  # route through b2 is expensive
        augmented = augmented_for(graph, [[a], [c]])
        result = explore_top_k(augmented, costs, k=1)
        assert b1 in result.subgraphs[0].elements
        assert b2 not in result.subgraphs[0].elements


class TestDmax:
    def test_dmax_limits_path_length(self):
        graph, keys, _ = build_line_graph(6)
        augmented = augmented_for(graph, [[keys[0]], [keys[5]]])
        # Connecting needs paths of up to 10 elements; dmax=3 forbids it.
        result = explore_top_k(augmented, uniform_costs(graph), k=1, dmax=3)
        assert result.subgraphs == []

    def test_dmax_allows_exact_boundary(self):
        graph, keys, _ = build_line_graph(3)  # 5 elements end to end
        augmented = augmented_for(graph, [[keys[0]], [keys[2]]])
        # Paths meet at the middle vertex: each path has distance 2.
        result = explore_top_k(augmented, uniform_costs(graph), k=1, dmax=2)
        assert len(result.subgraphs) == 1


class TestTermination:
    def test_threshold_termination(self):
        graph, keys, _ = build_line_graph(8)
        augmented = augmented_for(graph, [[keys[0]], [keys[1]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=1)
        assert result.terminated_by == "threshold"

    def test_budget_termination(self):
        graph, keys, _ = build_line_graph(8)
        augmented = augmented_for(graph, [[keys[0]], [keys[7]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=5, max_cursors=3)
        assert result.terminated_by == "budget"

    def test_missing_cost_raises(self):
        graph, keys, _ = build_line_graph(2)
        augmented = augmented_for(graph, [[keys[0]]])
        with pytest.raises(KeyError):
            explore_top_k(augmented, {}, k=1)

    def test_non_positive_cost_rejected(self):
        graph, keys, _ = build_line_graph(2)
        augmented = augmented_for(graph, [[keys[0]]])
        costs = uniform_costs(graph)
        costs[keys[0]] = 0.0
        with pytest.raises(ValueError):
            explore_top_k(augmented, costs, k=1)


class TestCyclicGraphs:
    def test_cycle_explored_without_hanging(self):
        graph = SummaryGraph()
        keys = [graph.add_class_vertex(URI(f"c:{i}")).key for i in range(4)]
        for i in range(4):
            graph.add_edge(
                URI(f"e:{i}"), SummaryEdgeKind.RELATION, keys[i], keys[(i + 1) % 4]
            )
        augmented = augmented_for(graph, [[keys[0]], [keys[2]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=4)
        assert result.subgraphs
        # Two shortest routes around the cycle tie.
        assert result.subgraphs[0].cost == result.subgraphs[1].cost

    def test_self_loop_edge(self):
        graph = SummaryGraph()
        a = graph.add_class_vertex(URI("c:a")).key
        loop = graph.add_edge(URI("e:loop"), SummaryEdgeKind.RELATION, a, a).key
        augmented = augmented_for(graph, [[loop], [a]])
        result = explore_top_k(augmented, uniform_costs(graph), k=1)
        assert result.subgraphs
        assert loop in result.subgraphs[0].elements


class TestBestCombinations:
    def cursors(self, costs, keyword=0):
        return [Cursor.origin_cursor(f"n{i}", keyword, c) for i, c in enumerate(costs)]

    def test_yields_ascending_costs(self):
        lists = [self.cursors([1.0, 2.0, 5.0]), self.cursors([1.0, 3.0], 1)]
        combos = list(_best_combinations(lists))
        costs = [c for c, _ in combos]
        assert costs == sorted(costs)
        assert len(combos) == 6

    def test_exhaustive_over_all_tuples(self):
        lists = [self.cursors([1.0, 2.0, 3.0]), self.cursors([1.0, 2.0, 3.0], 1)]
        assert len(list(_best_combinations(lists))) == 9

    def test_first_combo_is_cheapest(self):
        lists = [self.cursors([2.0, 1.5]), self.cursors([4.0, 0.5], 1)]
        # Lists are expected ascending; emulate registration order.
        lists = [sorted(l, key=lambda c: c.cost) for l in lists]
        cost, combo = next(_best_combinations(lists))
        assert cost == pytest.approx(2.0)

    def test_empty_list_yields_nothing(self):
        assert list(_best_combinations([[], self.cursors([1.0])])) == []

    def test_cutoff_yields_every_combination_below_it(self):
        """With a cut-off, the generator still enumerates every combination
        cheaper than the bound, in ascending order — pruning only trims
        frontier state the caller could never consume."""
        lists = [self.cursors([1.0, 2.0, 5.0]), self.cursors([1.0, 3.0, 4.0], 1)]
        unbounded = [(c, tuple(t)) for c, t in _best_combinations(lists)]
        bound = 6.0
        bounded = [(c, tuple(t)) for c, t in _best_combinations(lists, lambda: bound)]
        expected = [entry for entry in unbounded if entry[0] < bound]
        # The first combination is always yielded (pruning applies to
        # successors); beyond that, exactly the below-bound prefix.
        assert bounded[0] == unbounded[0]
        assert [e for e in bounded if e[0] < bound] == expected

    def test_cutoff_bounds_frontier_allocation(self):
        """Long per-keyword lists must not allocate a quadratic frontier
        when the cut-off is already tight."""
        import heapq as heapq_module
        from repro.core import exploration

        lists = [self.cursors([float(i + 1) for i in range(60)]),
                 self.cursors([float(i + 1) for i in range(60)], 1)]
        pushes = 0
        original = heapq_module.heappush

        def counting_push(heap, item):
            nonlocal pushes
            pushes += 1
            return original(heap, item)

        exploration.heapq.heappush = counting_push
        try:
            consumed = 0
            for cost, _ in _best_combinations(lists, lambda: 5.0):
                if cost >= 5.0:
                    break
                consumed += 1
            bounded_pushes = pushes

            pushes = 0
            for cost, _ in _best_combinations(lists):
                if cost >= 5.0:
                    break
            unbounded_pushes = pushes
        finally:
            exploration.heapq.heappush = original

        assert consumed > 0
        # Without the bound the consumer's early break still leaves a
        # frontier proportional to what was pushed; the bound keeps pushes
        # to the few below-cut-off successors.
        assert bounded_pushes < unbounded_pushes
        assert bounded_pushes <= 2 * consumed + 2


class TestDiagnostics:
    def test_counters_populated(self):
        graph, keys, _ = build_line_graph(5)
        augmented = augmented_for(graph, [[keys[0]], [keys[4]]])
        result = explore_top_k(augmented, uniform_costs(graph), k=2)
        assert result.cursors_created > 0
        assert result.cursors_popped > 0
        assert result.max_queue_size > 0
        assert "ExplorationResult" in repr(result)
