"""Unit tests for the evaluation harness."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.dblp import DBLP
from repro.datasets.workloads import IntentSpec, WorkloadQuery
from repro.eval.effectiveness import (
    EffectivenessReport,
    evaluate_effectiveness,
    reciprocal_rank,
)
from repro.eval.index_stats import collect_index_stats
from repro.eval.timing import Timer, summarize_times, time_call
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.terms import Literal, Variable

x = Variable("x")


def intent():
    return IntentSpec([(DBLP.year, "?x", Literal("1999"))])


def query(year):
    return ConjunctiveQuery([Atom(DBLP.year, x, Literal(year))])


class TestReciprocalRank:
    def test_rank_one(self):
        wq = WorkloadQuery("q", ["1999"], "d", intent())
        assert reciprocal_rank([query("1999")], wq) == 1.0

    def test_rank_two(self):
        wq = WorkloadQuery("q", ["1999"], "d", intent())
        assert reciprocal_rank([query("2000"), query("1999")], wq) == 0.5

    def test_no_match(self):
        wq = WorkloadQuery("q", ["1999"], "d", intent())
        assert reciprocal_rank([query("2000")], wq) == 0.0

    def test_empty_results(self):
        wq = WorkloadQuery("q", ["1999"], "d", intent())
        assert reciprocal_rank([], wq) == 0.0

    def test_missing_intent_raises(self):
        wq = WorkloadQuery("q", ["1999"], "d", None)
        with pytest.raises(ValueError):
            reciprocal_rank([], wq)


class TestReport:
    def test_mrr(self):
        report = EffectivenessReport("c3", {"a": 1.0, "b": 0.5})
        assert report.mrr == 0.75
        assert report.rr("a") == 1.0

    def test_empty_report(self):
        assert EffectivenessReport("c1", {}).mrr == 0.0


class TestEvaluateEffectiveness:
    def test_runs_workload(self, example_graph):
        from repro.datasets.example import EX
        from repro.rdf.namespace import RDF
        from repro.datasets.workloads import OneOf

        engine = KeywordSearchEngine(example_graph, cost_model="c3")
        workload = [
            WorkloadQuery(
                "E1",
                ["2006", "cimiano", "aifb"],
                "the Fig. 1c query",
                IntentSpec(
                    [
                        (RDF.type, "?x", OneOf(EX.Publication)),
                        (EX.year, "?x", Literal("2006")),
                        (EX.author, "?x", "?y"),
                        (EX.name, "?y", Literal("P. Cimiano")),
                        (EX.worksAt, "?y", "?z"),
                        (EX.name, "?z", Literal("AIFB")),
                    ]
                ),
            )
        ]
        report = evaluate_effectiveness(engine, workload, k=5)
        assert report.per_query["E1"] == 1.0
        assert report.mrr == 1.0


class TestIndexStats:
    def test_collects_row(self, example_graph):
        row = collect_index_stats("example", example_graph)
        assert row.dataset == "example"
        assert row.triples == len(example_graph)
        assert row.keyword_index_entries > 0
        assert row.graph_index_elements > 0
        assert row.summary_ratio > 1.0
        assert "triples" in row.as_dict()


class TestTiming:
    def test_timer(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0

    def test_time_call(self):
        samples = time_call(lambda: None, repeat=3)
        assert len(samples) == 3

    def test_summarize(self):
        summary = summarize_times([0.001, 0.002, 0.003])
        assert summary["min_ms"] == pytest.approx(1.0)
        assert summary["median_ms"] == pytest.approx(2.0)
        assert summary["mean_ms"] == pytest.approx(2.0)
