"""Unit tests for the Fig. 1b single-table store."""

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.store.single_table import Row, SingleTableStore

EX = Namespace("http://t/")


def make_store():
    return SingleTableStore(
        [
            Triple(EX.p1, EX.type, EX.Publication),
            Triple(EX.p1, EX.year, Literal("2006")),
            Triple(EX.p1, EX.author, EX.r1),
            Triple(EX.r1, EX.name, Literal("P. Cimiano")),
            Triple(EX.p2, EX.type, EX.Publication),
            Triple(EX.p2, EX.year, Literal("2007")),
        ]
    )


def test_rows_are_three_columns():
    store = make_store()
    assert len(store) == 6
    assert store.rows[0] == Row(EX.p1, EX.type, EX.Publication)


def test_single_pattern_scan():
    store = make_store()
    x = Variable("x")
    results = store.evaluate_self_join([(x, EX.type, EX.Publication)], [x])
    assert {r[0] for r in results} == {EX.p1, EX.p2}


def test_self_join_two_patterns():
    store = make_store()
    x = Variable("x")
    results = store.evaluate_self_join(
        [(x, EX.type, EX.Publication), (x, EX.year, Literal("2006"))], [x]
    )
    assert results == [(EX.p1,)]


def test_fig1c_style_join():
    store = make_store()
    x, y = Variable("x"), Variable("y")
    results = store.evaluate_self_join(
        [
            (x, EX.type, EX.Publication),
            (x, EX.author, y),
            (y, EX.name, Literal("P. Cimiano")),
        ],
        [x, y],
    )
    assert results == [(EX.p1, EX.r1)]


def test_shared_variable_must_unify():
    store = make_store()
    x = Variable("x")
    results = store.evaluate_self_join(
        [(x, EX.year, Literal("2006")), (x, EX.year, Literal("2007"))], [x]
    )
    assert results == []


def test_results_distinct():
    store = SingleTableStore(
        [
            Triple(EX.p1, EX.author, EX.r1),
            Triple(EX.p1, EX.author, EX.r2),
        ]
    )
    x = Variable("x")
    y = Variable("y")
    results = store.evaluate_self_join([(x, EX.author, y)], [x])
    assert results == [(EX.p1,)]


def test_constant_projection_passthrough():
    store = make_store()
    x = Variable("x")
    # Projecting a variable bound by the join.
    results = store.evaluate_self_join([(EX.p1, EX.author, x)], [x])
    assert results == [(EX.r1,)]
