"""Unit tests for the DataGraph classification (Definition 1)."""

import pytest

from repro.rdf.graph import DataGraph, EdgeKind, GraphIntegrityError, VertexKind
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

EX = Namespace("http://t/")


def small_graph() -> DataGraph:
    return DataGraph(
        [
            Triple(EX.e1, RDF.type, EX.C1),
            Triple(EX.e2, RDF.type, EX.C2),
            Triple(EX.e1, EX.rel, EX.e2),
            Triple(EX.e1, EX.attr, Literal("v1")),
            Triple(EX.C1, RDFS.subClassOf, EX.C2),
            Triple(EX.e3, EX.rel, EX.e1),  # untyped entity
        ]
    )


class TestVertexClassification:
    def test_classes(self):
        g = small_graph()
        assert g.classes == {EX.C1, EX.C2}

    def test_entities(self):
        g = small_graph()
        assert g.entities == {EX.e1, EX.e2, EX.e3}

    def test_values(self):
        g = small_graph()
        assert g.values == {Literal("v1")}

    def test_vertex_kind(self):
        g = small_graph()
        assert g.vertex_kind(EX.C1) is VertexKind.CLASS
        assert g.vertex_kind(EX.e1) is VertexKind.ENTITY
        assert g.vertex_kind(Literal("v1")) is VertexKind.VALUE
        assert g.vertex_kind(EX.unknown) is None

    def test_sets_are_disjoint(self):
        g = small_graph()
        assert not (g.classes & g.entities)
        assert not ({t for t in g.values} & g.entities)


class TestEdgeClassification:
    def test_edge_kinds(self):
        g = small_graph()
        assert g.edge_kind(Triple(EX.e1, RDF.type, EX.C1)) is EdgeKind.TYPE
        assert g.edge_kind(Triple(EX.C1, RDFS.subClassOf, EX.C2)) is EdgeKind.SUBCLASS
        assert g.edge_kind(Triple(EX.e1, EX.rel, EX.e2)) is EdgeKind.RELATION
        assert g.edge_kind(Triple(EX.e1, EX.attr, Literal("v1"))) is EdgeKind.ATTRIBUTE

    def test_label_sets(self):
        g = small_graph()
        assert g.relation_labels == {EX.rel}
        assert g.attribute_labels == {EX.attr}

    def test_relation_triples_by_label(self):
        g = small_graph()
        assert len(list(g.relation_triples(EX.rel))) == 2
        assert len(list(g.relation_triples(EX.unknown))) == 0


class TestTypeStructure:
    def test_types_of(self):
        g = small_graph()
        assert g.types_of(EX.e1) == {EX.C1}
        assert g.types_of(EX.e3) == frozenset()

    def test_instances_of(self):
        g = small_graph()
        assert g.instances_of(EX.C1) == {EX.e1}

    def test_untyped_entities(self):
        g = small_graph()
        assert g.untyped_entities == {EX.e3}

    def test_subclass_direct_and_transitive(self):
        g = DataGraph(
            [
                Triple(EX.A, RDFS.subClassOf, EX.B),
                Triple(EX.B, RDFS.subClassOf, EX.C),
            ]
        )
        assert g.superclasses_of(EX.A) == {EX.B}
        assert g.superclasses_of(EX.A, transitive=True) == {EX.B, EX.C}
        assert g.subclasses_of(EX.C, transitive=True) == {EX.A, EX.B}

    def test_subclass_cycle_terminates(self):
        g = DataGraph(
            [
                Triple(EX.A, RDFS.subClassOf, EX.B),
                Triple(EX.B, RDFS.subClassOf, EX.A),
            ]
        )
        assert g.superclasses_of(EX.A, transitive=True) == {EX.A, EX.B}

    def test_subclass_pairs(self):
        g = small_graph()
        assert list(g.subclass_pairs()) == [(EX.C1, EX.C2)]


class TestNavigation:
    def test_outgoing_incoming(self):
        g = small_graph()
        assert (EX.rel, EX.e2) in g.outgoing(EX.e1)
        assert (EX.rel, EX.e3) in g.incoming(EX.e1)

    def test_attribute_occurrences(self):
        g = small_graph()
        occurrences = list(g.attribute_occurrences(Literal("v1")))
        assert occurrences == [(EX.attr, EX.e1, frozenset({EX.C1}))]


class TestLabels:
    def test_label_from_name_attribute(self):
        g = DataGraph([Triple(EX.e1, URI("name"), Literal("Alice"))])
        assert g.label_of(EX.e1) == "Alice"

    def test_rdfs_label_preferred_over_name(self):
        g = DataGraph(
            [
                Triple(EX.e1, URI("name"), Literal("fallback")),
                Triple(EX.e1, RDFS.label, Literal("preferred")),
            ]
        )
        assert g.label_of(EX.e1) == "preferred"

    def test_label_falls_back_to_local_name(self):
        g = DataGraph([Triple(EX.e1, EX.rel, EX.e2)])
        assert g.label_of(EX.e1) == "e1"

    def test_literal_label_is_lexical(self):
        g = small_graph()
        assert g.label_of(Literal("v1")) == "v1"


class TestIntegrity:
    def test_duplicate_triples_ignored(self):
        g = DataGraph()
        t = Triple(EX.e1, EX.rel, EX.e2)
        assert g.add(t) is True
        assert g.add(t) is False
        assert len(g) == 1

    def test_class_entity_conflict_resolved_non_strict(self):
        g = DataGraph(
            [
                Triple(EX.e1, RDF.type, EX.C1),
                Triple(EX.C1, EX.rel, EX.e1),  # class used as entity
            ]
        )
        assert g.vertex_kind(EX.C1) is VertexKind.CLASS
        assert g.conflicts

    def test_strict_mode_raises(self):
        with pytest.raises(GraphIntegrityError):
            DataGraph(
                [
                    Triple(EX.e1, RDF.type, EX.C1),
                    Triple(EX.C1, EX.rel, EX.e1),
                ],
                strict=True,
            )

    def test_literal_typed_object_is_violation(self):
        g = DataGraph()
        g.add(Triple(EX.e1, RDF.type, Literal("bad")))
        assert g.conflicts

    def test_preferred_type_predicate_tracks_usage(self):
        g = DataGraph([Triple(EX.e1, URI("type"), EX.C1)])
        assert g.preferred_type_predicate == URI("type")

    def test_preferred_type_predicate_defaults_to_rdf(self):
        g = DataGraph()
        assert g.preferred_type_predicate == RDF.type

    def test_stats_counts(self, example_graph):
        stats = example_graph.stats()
        assert stats["triples"] == len(example_graph)
        assert stats["classes"] == 6
        assert stats["entities"] == 8
