"""Unit tests for the BLINKS-style partition-index search."""

import pytest

from repro.baselines.blinks import PartitionedIndexSearch
from repro.baselines.backward import BackwardSearch
from repro.baselines.graph_adapter import EntityGraphView
from repro.datasets.example import EX


@pytest.fixture(scope="module")
def view(example_graph):
    return EntityGraphView(example_graph)


@pytest.fixture(scope="module")
def search(view):
    return PartitionedIndexSearch(view, blocks=4, partitioner="bfs")


def test_finds_answer_roots(view, search):
    result = search.search(["cimiano", "aifb"], k=5)
    roots = {view.term_of(t.root) for t in result.trees}
    assert EX.re2URI in roots


def test_same_roots_as_unguided_backward(view, search):
    """The block-level bound is admissible: guided search finds the same
    answer set as plain backward search."""
    keywords = ["2006", "cimiano"]
    guided = search.search(keywords, k=10)
    plain = BackwardSearch(view).search(keywords, k=10)
    assert {t.root for t in guided.trees} == {t.root for t in plain.trees}


def test_metis_partitioner_variant(view):
    search = PartitionedIndexSearch(view, blocks=4, partitioner="metis")
    assert search.search(["cimiano", "aifb"], k=3).trees


def test_unknown_partitioner_rejected(view):
    with pytest.raises(ValueError):
        PartitionedIndexSearch(view, partitioner="zzz")


def test_no_keywords(view, search):
    assert search.search(["zzznope"], k=3).terminated_by == "no-keywords"


def test_block_count_respected(view):
    search = PartitionedIndexSearch(view, blocks=2, partitioner="bfs")
    stats = search.index_stats()
    # BFS partitioning bounds block *size*; disconnected fragments can
    # still add blocks, so assert the size bound rather than the count.
    assert stats["nodes"] == view.node_count
    sizes = {}
    for b in search._block:
        sizes[b] = sizes.get(b, 0) + 1
    assert max(sizes.values()) <= -(-view.node_count // 2)


def test_name_reflects_configuration(view):
    search = PartitionedIndexSearch(view, blocks=300, partitioner="bfs")
    assert search.name == "300-bfs"


def test_trees_sorted(view, search):
    result = search.search(["2006", "cimiano"], k=5)
    costs = [t.cost for t in result.trees]
    assert costs == sorted(costs)
