"""Unit tests for workload definitions and intent matching."""

import pytest

from repro.datasets.dblp import DBLP
from repro.datasets.workloads import (
    Contains,
    IntentSpec,
    OneOf,
    WorkloadQuery,
    dblp_effectiveness_workload,
    dblp_performance_queries,
    effectiveness_workload,
    example_effectiveness_workload,
    lubm_effectiveness_workload,
    tap_effectiveness_workload,
)
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI, Variable

x, y = Variable("x"), Variable("y")


class TestMatchers:
    def test_contains_case_insensitive(self):
        assert Contains("cimiano").matches(Literal("Philipp Cimiano"))
        assert not Contains("cimiano").matches(Literal("Someone Else"))

    def test_contains_all_words(self):
        matcher = Contains("keyword", "search")
        assert matcher.matches(Literal("efficient keyword search"))
        assert not matcher.matches(Literal("keyword only"))

    def test_contains_rejects_non_literal(self):
        assert not Contains("x").matches(URI("x"))

    def test_oneof(self):
        matcher = OneOf(DBLP.Article, DBLP.Publication)
        assert matcher.matches(DBLP.Article)
        assert not matcher.matches(DBLP.Person)


class TestIntentSpec:
    def intent(self, exact=True):
        return IntentSpec(
            [
                (RDF.type, "?x", OneOf(DBLP.Article)),
                (DBLP.year, "?x", Literal("1999")),
            ],
            exact=exact,
        )

    def test_matching_query(self):
        q = ConjunctiveQuery(
            [Atom(RDF.type, x, DBLP.Article), Atom(DBLP.year, x, Literal("1999"))]
        )
        assert self.intent().matches(q)

    def test_variable_renaming_irrelevant(self):
        q = ConjunctiveQuery(
            [Atom(RDF.type, y, DBLP.Article), Atom(DBLP.year, y, Literal("1999"))]
        )
        assert self.intent().matches(q)

    def test_wrong_constant_rejected(self):
        q = ConjunctiveQuery(
            [Atom(RDF.type, x, DBLP.Article), Atom(DBLP.year, x, Literal("2000"))]
        )
        assert not self.intent().matches(q)

    def test_extra_content_atom_rejected_when_exact(self):
        q = ConjunctiveQuery(
            [
                Atom(RDF.type, x, DBLP.Article),
                Atom(DBLP.year, x, Literal("1999")),
                Atom(DBLP.title, x, Literal("noise")),
            ]
        )
        assert not self.intent().matches(q)

    def test_extra_atom_allowed_when_not_exact(self):
        q = ConjunctiveQuery(
            [
                Atom(RDF.type, x, DBLP.Article),
                Atom(DBLP.year, x, Literal("1999")),
                Atom(DBLP.title, x, Literal("noise")),
            ]
        )
        assert self.intent(exact=False).matches(q)

    def test_extra_type_and_subclass_atoms_always_allowed(self):
        q = ConjunctiveQuery(
            [
                Atom(RDF.type, x, DBLP.Article),
                Atom(DBLP.year, x, Literal("1999")),
                Atom(RDF.type, y, DBLP.Person),
                Atom(RDFS.subClassOf, DBLP.Article, DBLP.Publication),
            ]
        )
        # The type atom for ?y is unconstrained context, still fine.
        assert self.intent().matches(q)

    def test_shared_variable_consistency(self):
        intent = IntentSpec(
            [
                (DBLP.author, "?x", "?y"),
                (DBLP.name, "?y", Literal("A")),
            ]
        )
        good = ConjunctiveQuery(
            [Atom(DBLP.author, x, y), Atom(DBLP.name, y, Literal("A"))]
        )
        bad = ConjunctiveQuery(
            [Atom(DBLP.author, x, y), Atom(DBLP.name, x, Literal("A"))]
        )
        assert intent.matches(good)
        assert not intent.matches(bad)

    def test_injective_variable_mapping(self):
        intent = IntentSpec([(DBLP.author, "?x", "?y")])
        collapsed = ConjunctiveQuery([Atom(DBLP.author, x, x)])
        assert not intent.matches(collapsed)

    def test_requires_templates(self):
        with pytest.raises(ValueError):
            IntentSpec([])


class TestWorkloads:
    def test_dblp_workload_size_and_ids(self):
        workload = dblp_effectiveness_workload()
        assert len(workload) == 30
        assert len({w.qid for w in workload}) == 30
        assert all(w.intent is not None for w in workload)

    def test_tap_workload_size(self):
        workload = tap_effectiveness_workload()
        assert len(workload) == 9
        assert all(w.intent is not None for w in workload)

    def test_performance_queries_grow_in_length(self):
        queries = dblp_performance_queries()
        assert len(queries) == 10
        lengths = [len(q.keywords) for q in queries]
        assert lengths[0] == 2
        assert lengths[-1] == 7
        assert lengths == sorted(lengths)

    def test_workload_repr(self):
        wq = WorkloadQuery("X1", ["a", "b"], "desc")
        assert "X1" in repr(wq)

    def test_example_workload(self):
        workload = example_effectiveness_workload()
        assert len(workload) == 5
        assert len({w.qid for w in workload}) == 5
        assert all(w.intent is not None for w in workload)

    def test_lubm_workload_size_and_ids(self):
        workload = lubm_effectiveness_workload()
        assert len(workload) >= 15
        assert len({w.qid for w in workload}) == len(workload)
        assert all(w.intent is not None for w in workload)

    def test_lubm_keywords_survive_analysis(self):
        """Every keyword must produce at least one index token — a keyword
        the analyzer reduces to nothing can never match anything."""
        from repro.keyword.analysis import Analyzer

        analyzer = Analyzer()
        for wq in lubm_effectiveness_workload():
            for keyword in wq.keywords:
                assert analyzer.analyze(keyword), (wq.qid, keyword)

    def test_registry_covers_every_dataset(self):
        from repro.datasets import DATASET_NAMES

        for dataset in DATASET_NAMES:
            workload = effectiveness_workload(dataset)
            assert workload, dataset
        with pytest.raises(ValueError, match="unknown-ds"):
            effectiveness_workload("unknown-ds")
