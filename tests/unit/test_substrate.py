"""Unit tests for the version-keyed CSR exploration substrate."""

import pytest

from repro.core.exploration import explore_top_k
from repro.rdf.terms import URI, Literal
from repro.summary.augmentation import AugmentedSummaryGraph, augment
from repro.summary.elements import SummaryEdgeKind
from repro.summary.overlay import OverlaySummaryGraph
from repro.summary.substrate import ExplorationSubstrate, checked_cost
from repro.summary.summary_graph import SummaryGraph


def line_graph(n=4):
    graph = SummaryGraph()
    keys = [graph.add_class_vertex(URI(f"c:{i}"), agg_count=1).key for i in range(n)]
    edges = [
        graph.add_edge(
            URI(f"e:{i}"), SummaryEdgeKind.RELATION, keys[i], keys[i + 1]
        ).key
        for i in range(n - 1)
    ]
    return graph, keys, edges


class TestCaching:
    def test_substrate_cached_per_version(self):
        graph, keys, _ = line_graph()
        first = graph.exploration_substrate()
        assert graph.exploration_substrate() is first

    def test_mutation_invalidates_substrate(self):
        graph, keys, _ = line_graph()
        first = graph.exploration_substrate()
        graph.add_edge(URI("e:new"), SummaryEdgeKind.RELATION, keys[0], keys[2])
        second = graph.exploration_substrate()
        assert second is not first
        assert second.n == first.n + 1

    def test_copy_does_not_share_substrate(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        clone = graph.copy()
        assert clone.exploration_substrate() is not substrate


class TestStructure:
    def test_keys_in_canonical_order(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        assert list(substrate.keys) == sorted(substrate.keys, key=repr)
        assert substrate.reprs == sorted(substrate.reprs)

    def test_csr_rows_match_graph_neighbors(self):
        graph, _, _ = line_graph(5)
        substrate = graph.exploration_substrate()
        for key, element_id in substrate.ids.items():
            expected = sorted(substrate.ids[nb] for nb in graph.neighbors(key))
            assert list(substrate.row(element_id)) == expected

    def test_stats_and_repr(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        stats = substrate.stats()
        assert stats["elements"] == len(graph)
        assert "ExplorationSubstrate" in repr(substrate)


class TestCostSlots:
    def test_cost_array_cached_by_table_identity(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        table = {key: 1.0 for key in substrate.keys}
        first = substrate.cost_array(table)
        assert substrate.cost_array(table) is first
        assert substrate.cost_array(dict(table)) is not first

    def test_missing_cost_raises_key_error(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        with pytest.raises(KeyError, match="no cost assigned"):
            substrate.cost_array({})

    def test_non_positive_cost_rejected(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        table = {key: 1.0 for key in substrate.keys}
        table[substrate.keys[0]] = 0.0
        with pytest.raises(ValueError, match="must be positive"):
            substrate.fresh_cost_array(table)

    def test_checked_cost_passthrough(self):
        assert checked_cost("x", 0.5) == 0.5


class TestBoundsCache:
    def test_bounds_served_only_for_the_same_table_object(self):
        """Guided bound entries verify the cost table by identity, so a
        recycled ``id()`` of a dead table can never alias stale bounds."""
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        table_a = {key: 1.0 for key in substrate.keys}
        table_b = {key: 2.0 for key in substrate.keys}
        key = ((id(table_a), frozenset()), (), ((0, 1.0),))
        substrate.store_bounds(key, table_a, [[1.0]])
        assert substrate.get_bounds(key, table_a) == [[1.0]]
        # Same cache key (as after id() reuse), different table object.
        assert substrate.get_bounds(key, table_b) is None

    def test_bounds_cache_is_lru_bounded(self):
        graph, _, _ = line_graph()
        substrate = graph.exploration_substrate()
        table = {}
        for i in range(substrate.MAX_BOUNDS + 5):
            substrate.store_bounds((i,), table, [[float(i)]])
        assert len(substrate._bounds_cache) == substrate.MAX_BOUNDS


class TestExplorationIntegration:
    def _costs(self, graph):
        out = {v.key: 1.0 for v in graph.vertices}
        out.update({e.key: 1.0 for e in graph.edges})
        return out

    def test_force_substrate_matches_reference(self):
        graph, keys, edges = line_graph(4)
        augmented = AugmentedSummaryGraph(graph, [{keys[0]}, {keys[3]}], {})
        costs = self._costs(graph)
        a = explore_top_k(augmented, costs, k=3, use_substrate=True)
        b = explore_top_k(augmented, costs, k=3, use_substrate=False)
        assert [sg.elements for sg in a.subgraphs] == [sg.elements for sg in b.subgraphs]
        assert [sg.paths for sg in a.subgraphs] == [sg.paths for sg in b.subgraphs]

    def test_masked_non_positive_base_cost_falls_back(self):
        """A two-layer ChainMap whose base holds a non-positive entry that
        a per-query override rescores positive must behave like the
        reference interning: succeed, reading through the full mapping."""
        from collections import ChainMap

        graph, keys, _ = line_graph(3)
        base = self._costs(graph)
        base[keys[1]] = -5.0
        costs = ChainMap({keys[1]: 2.0}, base)
        augmented = AugmentedSummaryGraph(graph, [{keys[0]}, {keys[2]}], {})
        a = explore_top_k(augmented, costs, k=2, use_substrate=True)
        b = explore_top_k(augmented, costs, k=2, use_substrate=False)
        assert [sg.cost for sg in a.subgraphs] == [sg.cost for sg in b.subgraphs]
        assert a.subgraphs

    def test_use_substrate_requires_summary_graph(self):
        class Fake:
            vertices = ()
            edges = ()

            def neighbors(self, key):  # pragma: no cover - never reached
                return ()

        augmented = AugmentedSummaryGraph(Fake(), [{"a"}], {})
        with pytest.raises(ValueError, match="substrate exploration requires"):
            explore_top_k(augmented, {"a": 1.0}, k=1, use_substrate=True)

    def test_overlay_elements_get_appended_ids(self):
        """A query whose matches add overlay elements explores identically
        through the substrate, and the base substrate stays unmutated."""
        from repro.keyword.keyword_index import ValueMatch

        graph, keys, _ = line_graph(3)
        substrate = graph.exploration_substrate()
        n_before = substrate.n

        match = ValueMatch(
            Literal("v"), frozenset([(URI("a:attr"), URI("c:0"))]), 1.0
        )
        # Class term URI("c:0") exists: line_graph uses ("class", URI("c:0")).
        augmented = augment(graph, [[match]])
        assert isinstance(augmented.graph, OverlaySummaryGraph)
        added = augmented.graph.added_element_keys()
        assert added  # V-vertex + A-edge live in the overlay
        costs = dict.fromkeys(
            [v.key for v in augmented.graph.vertices]
            + [e.key for e in augmented.graph.edges],
            1.0,
        )
        a = explore_top_k(augmented, costs, k=2, use_substrate=True)
        b = explore_top_k(augmented, costs, k=2, use_substrate=False)
        assert [sg.elements for sg in a.subgraphs] == [sg.elements for sg in b.subgraphs]
        assert graph.exploration_substrate() is substrate
        assert substrate.n == n_before
