"""Unit tests for the generic inverted index."""

from repro.keyword.inverted_index import InvertedIndex, Posting


def make_index():
    index = InvertedIndex()
    index.index("doc1", ["graph", "search", "graph"])
    index.index("doc2", ["graph", "database"])
    index.index("doc3", ["ranking"])
    return index


def test_lookup_returns_postings():
    index = make_index()
    postings = {p.element: p for p in index.lookup("graph")}
    assert set(postings) == {"doc1", "doc2"}
    assert postings["doc1"].term_frequency == 2
    assert postings["doc1"].label_terms == 3


def test_lookup_missing_term():
    assert make_index().lookup("nope") == []


def test_contains():
    index = make_index()
    assert "graph" in index
    assert "nope" not in index


def test_document_frequency():
    index = make_index()
    assert index.document_frequency("graph") == 2
    assert index.document_frequency("ranking") == 1
    assert index.document_frequency("nope") == 0


def test_idf_monotone_in_rarity():
    index = make_index()
    assert index.idf("ranking") > index.idf("graph")


def test_counts():
    index = make_index()
    assert index.element_count == 3
    assert index.term_count == 4
    assert index.posting_count == 5


def test_empty_label_ignored():
    index = InvertedIndex()
    index.index("doc", [])
    assert index.element_count == 0


def test_reindexing_same_element_accumulates():
    index = InvertedIndex()
    index.index("doc", ["a"])
    index.index("doc", ["a", "b"])
    posting = index.lookup("a")[0]
    assert posting.term_frequency == 2
    assert index.element_count == 1


def test_estimated_bytes_positive():
    assert make_index().estimated_bytes() > 0


def test_vocabulary():
    assert set(make_index().vocabulary) == {"graph", "search", "database", "ranking"}
