"""Unit tests for the graph partitioners."""

import random

import pytest

from repro.baselines.partitioning import (
    bfs_partition,
    metis_like_partition,
    partition_quality,
)


def ring(n):
    return [[(i - 1) % n, (i + 1) % n] for i in range(n)]


def grid(rows, cols):
    adjacency = [[] for _ in range(rows * cols)]
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                adjacency[i].append(i + 1)
                adjacency[i + 1].append(i)
            if r + 1 < rows:
                adjacency[i].append(i + cols)
                adjacency[i + cols].append(i)
    return adjacency


def random_graph(n, m, seed=0):
    rng = random.Random(seed)
    adjacency = [[] for _ in range(n)]
    for _ in range(m):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            adjacency[a].append(b)
            adjacency[b].append(a)
    return adjacency


class TestBfsPartition:
    def test_all_nodes_assigned(self):
        block = bfs_partition(ring(30), 5)
        assert len(block) == 30
        assert all(b >= 0 for b in block)

    def test_block_sizes_bounded(self):
        block = bfs_partition(ring(30), 5)
        sizes = {}
        for b in block:
            sizes[b] = sizes.get(b, 0) + 1
        assert max(sizes.values()) <= 6  # ceil(30/5)

    def test_single_block(self):
        block = bfs_partition(ring(10), 1)
        assert set(block) == {0}

    def test_deterministic_for_seed(self):
        g = random_graph(50, 120)
        assert bfs_partition(g, 8, seed=3) == bfs_partition(g, 8, seed=3)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            bfs_partition(ring(4), 0)

    def test_empty_graph(self):
        assert bfs_partition([], 3) == []


class TestMetisLikePartition:
    def test_all_nodes_assigned(self):
        block = metis_like_partition(grid(10, 10), 4)
        assert len(block) == 100
        assert all(b >= 0 for b in block)

    def test_deterministic(self):
        g = random_graph(80, 200)
        assert metis_like_partition(g, 6, seed=1) == metis_like_partition(g, 6, seed=1)

    def test_quality_not_worse_than_bfs_on_grid(self):
        g = grid(12, 12)
        bfs_cut = partition_quality(g, bfs_partition(g, 6, seed=0))["edge_cut_fraction"]
        metis_cut = partition_quality(g, metis_like_partition(g, 6, seed=0))[
            "edge_cut_fraction"
        ]
        # The multilevel partitioner should be at least competitive.
        assert metis_cut <= bfs_cut * 1.5

    def test_empty_graph(self):
        assert metis_like_partition([], 3) == []

    def test_small_graph_skips_coarsening(self):
        g = ring(8)
        block = metis_like_partition(g, 2)
        assert len(block) == 8


class TestQuality:
    def test_zero_cut_for_single_block(self):
        g = ring(10)
        quality = partition_quality(g, [0] * 10)
        assert quality["edge_cut_fraction"] == 0.0
        assert quality["blocks"] == 1.0

    def test_full_cut_for_alternating_blocks(self):
        g = ring(10)
        quality = partition_quality(g, [i % 2 for i in range(10)])
        assert quality["edge_cut_fraction"] == 1.0

    def test_balance_metric(self):
        quality = partition_quality(ring(10), [0] * 9 + [1])
        assert quality["max_block_size"] == 9.0
        assert quality["balance"] > 1.0
