"""Unit tests for query isomorphism and canonical forms."""

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.isomorphism import canonical_form, queries_isomorphic
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, Variable

EX = Namespace("http://t/")
x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Variable("a"), Variable("b"), Variable("c")


def test_identical_queries_isomorphic():
    q = ConjunctiveQuery([Atom(EX.p, x, y)])
    assert queries_isomorphic(q, q)


def test_renamed_variables_isomorphic():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, Literal("v"))])
    q2 = ConjunctiveQuery([Atom(EX.p, a, b), Atom(EX.q, b, Literal("v"))])
    assert queries_isomorphic(q1, q2)


def test_atom_order_irrelevant():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
    q2 = ConjunctiveQuery([Atom(EX.q, b, c), Atom(EX.p, a, b)])
    assert queries_isomorphic(q1, q2)


def test_different_predicates_not_isomorphic():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y)])
    q2 = ConjunctiveQuery([Atom(EX.q, x, y)])
    assert not queries_isomorphic(q1, q2)


def test_different_constants_not_isomorphic():
    q1 = ConjunctiveQuery([Atom(EX.p, x, Literal("a"))])
    q2 = ConjunctiveQuery([Atom(EX.p, x, Literal("b"))])
    assert not queries_isomorphic(q1, q2)


def test_variable_constant_mismatch():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y)])
    q2 = ConjunctiveQuery([Atom(EX.p, x, Literal("v"))])
    assert not queries_isomorphic(q1, q2)


def test_mapping_must_be_injective():
    # p(x, y) with x≠y vs p(x, x): not isomorphic.
    q1 = ConjunctiveQuery([Atom(EX.p, x, y)])
    q2 = ConjunctiveQuery([Atom(EX.p, x, x)])
    assert not queries_isomorphic(q1, q2)


def test_mapping_must_be_consistent():
    # Shared variable on one side, distinct on the other.
    q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, x, z)])
    q2 = ConjunctiveQuery([Atom(EX.p, a, b), Atom(EX.q, c, b)])
    assert not queries_isomorphic(q1, q2)


def test_atom_count_mismatch():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y)])
    q2 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
    assert not queries_isomorphic(q1, q2)


def test_distinguished_check():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[x])
    q2 = ConjunctiveQuery([Atom(EX.p, a, b)], distinguished=[b])
    assert queries_isomorphic(q1, q2)  # atoms only
    assert not queries_isomorphic(q1, q2, check_distinguished=True)
    q3 = ConjunctiveQuery([Atom(EX.p, a, b)], distinguished=[a])
    assert queries_isomorphic(q1, q3, check_distinguished=True)


def test_symmetric_query_isomorphism():
    # Triangle patterns under rotation.
    q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.p, y, z), Atom(EX.p, z, x)])
    q2 = ConjunctiveQuery([Atom(EX.p, b, c), Atom(EX.p, c, a), Atom(EX.p, a, b)])
    assert queries_isomorphic(q1, q2)


def test_canonical_form_invariant_under_renaming():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, Literal("v"))])
    q2 = ConjunctiveQuery([Atom(EX.p, a, b), Atom(EX.q, b, Literal("v"))])
    assert canonical_form(q1) == canonical_form(q2)


def test_canonical_form_distinguishes_constants():
    q1 = ConjunctiveQuery([Atom(EX.p, x, Literal("a"))])
    q2 = ConjunctiveQuery([Atom(EX.p, x, Literal("b"))])
    assert canonical_form(q1) != canonical_form(q2)


def test_canonical_form_distinguishes_structure():
    q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
    q2 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, x, z)])
    assert canonical_form(q1) != canonical_form(q2)
