"""Unit tests for the bidirectional-search baseline."""

import pytest

from repro.baselines.bidirectional import BidirectionalSearch
from repro.baselines.graph_adapter import EntityGraphView
from repro.datasets.example import EX


@pytest.fixture(scope="module")
def view(example_graph):
    return EntityGraphView(example_graph)


def test_finds_connections(view):
    result = BidirectionalSearch(view).search(["cimiano", "aifb"], k=5)
    assert result.trees
    roots = {view.term_of(t.root) for t in result.trees}
    # Undirected expansion lets it meet at the researcher or the institute.
    assert roots & {EX.re2URI, EX.inst1URI}


def test_forward_edges_used(view):
    # 'aifb' (institute) to 'x media' (project) requires traversing
    # forward and backward edges — pure backward search cannot connect them
    # (no directed path ends at both).
    result = BidirectionalSearch(view).search(["aifb", "media"], k=3)
    assert result.trees


def test_k_found_termination(view):
    result = BidirectionalSearch(view).search(["researcher"], k=1)
    assert result.terminated_by == "k-found"


def test_budget_termination(view):
    search = BidirectionalSearch(view, expansion_budget=2)
    result = search.search(["cimiano", "x"], k=10)
    assert result.terminated_by in ("budget", "exhausted", "k-found")
    assert result.nodes_visited <= 3


def test_no_keywords(view):
    result = BidirectionalSearch(view).search(["zzz"], k=3)
    assert result.terminated_by == "no-keywords"


def test_decay_parameter_respected(view):
    # Just exercises the code path with a different decay.
    result = BidirectionalSearch(view, decay=0.9).search(["cimiano", "aifb"], k=2)
    assert result.trees


def test_trees_sorted_by_cost(view):
    result = BidirectionalSearch(view).search(["2006", "cimiano"], k=5)
    costs = [t.cost for t in result.trees]
    assert costs == sorted(costs)
