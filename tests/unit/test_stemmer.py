"""Unit tests for the Porter stemmer against known reference pairs."""

import pytest

from repro.keyword.stemmer import porter_stem


# Reference pairs from Porter's original paper / the canonical test set.
@pytest.mark.parametrize(
    "word,stem",
    [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("sky", "sky"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("hesitanci", "hesit"),
        ("digitizer", "digit"),
        ("conformabli", "conform"),
        ("radicalli", "radic"),
        ("differentli", "differ"),
        ("vileli", "vile"),
        ("analogousli", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formaliti", "formal"),
        ("sensitiviti", "sensit"),
        ("sensibiliti", "sensibl"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electriciti", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("homologou", "homolog"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angulariti", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
    ],
)
def test_reference_pairs(word, stem):
    assert porter_stem(word) == stem


def test_domain_vocabulary():
    assert porter_stem("publications") == porter_stem("publication")
    assert porter_stem("databases") == porter_stem("database")
    assert porter_stem("queries") == porter_stem("query")
    assert porter_stem("algorithms") == porter_stem("algorithm")


def test_short_words_unchanged():
    assert porter_stem("as") == "as"
    assert porter_stem("is") == "is"


def test_lowercases_input():
    assert porter_stem("Publications") == porter_stem("publications")


def test_idempotent_on_common_words():
    for word in ("database", "searching", "ranking", "indexes", "semantic"):
        once = porter_stem(word)
        assert porter_stem(once) == porter_stem(once)
