"""Unit tests for the dataset generators."""

import pytest

from repro.datasets import (
    DblpConfig,
    LubmConfig,
    TapConfig,
    generate_dblp,
    generate_lubm,
    generate_tap,
    iter_lubm_triples,
)
from repro.datasets.dblp import DBLP, DECOY_CONFERENCE_NAMES, DECOY_PERSON_NAMES
from repro.datasets.lubm import UB
from repro.datasets.tap import TAP
from repro.datasets import vocab
from repro.rdf.terms import Literal


class TestDblp:
    def test_deterministic(self):
        g1 = generate_dblp(DblpConfig(publications=100))
        g2 = generate_dblp(DblpConfig(publications=100))
        assert list(g1) == list(g2)

    def test_seed_changes_output(self):
        g1 = generate_dblp(DblpConfig(publications=100, seed=1))
        g2 = generate_dblp(DblpConfig(publications=100, seed=2))
        assert list(g1) != list(g2)

    def test_scale_parameter(self):
        small = generate_dblp(DblpConfig(publications=50))
        large = generate_dblp(DblpConfig(publications=200))
        assert len(large) > len(small)

    def test_structural_regime(self, dblp_small):
        stats = dblp_small.stats()
        # Few classes, many values — the DBLP regime of Fig. 6b.
        assert stats["classes"] <= 10
        assert stats["values"] > 20 * stats["classes"]

    def test_anchor_authors_present(self, dblp_small):
        values = dblp_small.values
        for name in vocab.AUTHOR_ANCHORS:
            assert Literal(name) in values

    def test_anchor_venues_present(self, dblp_small):
        values = dblp_small.values
        for name in vocab.CONFERENCE_ANCHORS:
            assert Literal(name) in values

    def test_decoys_present_by_default(self, dblp_small):
        values = dblp_small.values
        for name in DECOY_PERSON_NAMES + DECOY_CONFERENCE_NAMES:
            assert Literal(name) in values

    def test_decoys_can_be_disabled(self):
        graph = generate_dblp(DblpConfig(publications=50, decoys=False))
        assert Literal(DECOY_PERSON_NAMES[0]) not in graph.values
        assert DBLP.editor not in graph.relation_labels

    def test_editor_relation_sparse(self, dblp_small):
        author_count = sum(1 for _ in dblp_small.relation_triples(DBLP.author))
        editor_count = sum(1 for _ in dblp_small.relation_triples(DBLP.editor))
        assert 0 < editor_count < author_count / 5

    def test_class_hierarchy(self, dblp_small):
        assert DBLP.Publication in dblp_small.superclasses_of(DBLP.Article)
        assert DBLP.Publication in dblp_small.superclasses_of(DBLP.InProceedings)

    def test_anchor_pub_years_support_workload(self, dblp_small):
        # Cimiano (anchor 0) must have publications in 2006, 2000, 1998.
        cimiano = DBLP.person0
        pub_years = set()
        for pred, pub in dblp_small.incoming(cimiano):
            if pred == DBLP.author:
                for p2, v in dblp_small.outgoing(pub):
                    if p2 == DBLP.year:
                        pub_years.add(v.lexical)
        assert {"2006", "2000", "1998"} <= pub_years

    def test_xmedia_project_linked(self, dblp_small):
        assert Literal("X-Media") in dblp_small.values
        assert any(True for _ in dblp_small.relation_triples(DBLP.hasProject))


class TestLubm:
    def test_deterministic(self):
        g1 = generate_lubm(LubmConfig(universities=1))
        g2 = generate_lubm(LubmConfig(universities=1))
        assert list(g1) == list(g2)

    def test_streaming_generator_matches_graph_build(self):
        # The out-of-core build path consumes iter_lubm_triples directly;
        # it must yield exactly the triples generate_lubm materializes.
        config = LubmConfig(universities=2)
        streamed = list(iter_lubm_triples(config))
        assert streamed == list(generate_lubm(config))

    def test_streaming_generator_deterministic(self):
        config = LubmConfig(universities=1)
        assert list(iter_lubm_triples(config)) == list(iter_lubm_triples(config))

    def test_streaming_generator_is_lazy(self):
        # A generator, not a list: the first triples arrive without
        # exhausting the source.
        it = iter_lubm_triples(LubmConfig(universities=1))
        assert iter(it) is it
        assert next(it) is not None

    def test_universities_scale(self):
        one = generate_lubm(LubmConfig(universities=1))
        two = generate_lubm(LubmConfig(universities=2))
        assert len(two) > 1.5 * len(one)

    def test_class_hierarchy_depth(self, lubm_small):
        supers = lubm_small.superclasses_of(UB.FullProfessor, transitive=True)
        assert {UB.Professor, UB.Faculty, UB.Employee, UB.Person} <= supers

    def test_every_department_in_university(self, lubm_small):
        for triple in lubm_small.relation_triples(UB.subOrganizationOf):
            kinds = lubm_small.types_of(triple.object)
            assert kinds & {UB.University, UB.Department}

    def test_every_grad_student_has_advisor(self, lubm_small):
        grads = lubm_small.instances_of(UB.GraduateStudent)
        advised = {t.subject for t in lubm_small.relation_triples(UB.advisor)}
        assert grads <= advised

    def test_head_of_department_exists(self, lubm_small):
        assert any(True for _ in lubm_small.relation_triples(UB.headOf))


class TestTap:
    def test_deterministic(self):
        assert list(generate_tap()) == list(generate_tap())

    def test_many_classes(self, tap_small):
        # TAP's defining property: classes dominate relative to instances.
        stats = tap_small.stats()
        assert stats["classes"] >= 40

    def test_anchor_instances(self, tap_small):
        assert Literal("Michael Jordan") in tap_small.values
        assert Literal("Germany") in tap_small.values

    def test_anchor_relation(self, tap_small):
        jordan = TAP["Michael_Jordan"]
        bulls = TAP["Chicago_Bulls"]
        assert any(
            t.object == bulls
            for t in tap_small.relation_triples(TAP.playsFor)
            if t.subject == jordan
        )

    def test_hierarchy_rooted_at_entity(self, tap_small):
        supers = tap_small.superclasses_of(TAP.Basketball, transitive=True)
        assert TAP.Entity in supers

    def test_instances_per_class_config(self):
        small = generate_tap(TapConfig(instances_per_class=2))
        large = generate_tap(TapConfig(instances_per_class=10))
        assert len(large) > len(small)
