"""Unit tests for incremental offline-index maintenance (IndexManager)."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.example import EX, running_example_graph
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple


@pytest.fixture()
def engine():
    return KeywordSearchEngine(running_example_graph(), cost_model="c3", k=10)


def test_added_triples_become_searchable(engine):
    assert not engine.search("freshkeyword").candidates
    entity = URI("http://example.org/aifb/newPub")
    added = engine.add_triples(
        [
            Triple(entity, RDF.type, EX.Publication),
            Triple(entity, EX.title, Literal("freshkeyword")),
        ]
    )
    assert added == 2
    result = engine.search("freshkeyword")
    assert result.candidates


def test_removed_triples_stop_matching(engine):
    assert engine.search("2006").candidates
    removed = engine.remove_triples(
        [t for t in engine.graph.triples if "2006" in t.n3()]
    )
    assert removed > 0
    assert not engine.search("2006").candidates


def test_update_propagates_to_store_and_answers(engine):
    entity = URI("http://example.org/aifb/newPub")
    triples = [
        Triple(entity, RDF.type, EX.Publication),
        Triple(entity, EX.year, Literal("2031")),
    ]
    engine.add_triples(triples)
    assert all(t in engine.store for t in triples)
    outcome = engine.search_and_execute("2031", min_answers=1)
    assert outcome["answers"]
    engine.remove_triples(triples)
    assert not any(t in engine.store for t in triples)


def test_summary_graph_updates_in_place_without_rebuild(engine):
    summary_before = engine.summary
    entity = URI("http://example.org/aifb/someone")
    engine.add_triples([Triple(entity, RDF.type, EX.Researcher)])
    assert engine.summary is summary_before  # same object, mutated
    rebuilt = KeywordSearchEngine(
        DataGraph(engine.graph.triples), cost_model="c3", k=10
    )
    assert {v.key: v.agg_count for v in engine.summary.vertices} == {
        v.key: v.agg_count for v in rebuilt.summary.vertices
    }
    assert {e.key: e.agg_count for e in engine.summary.edges} == {
        e.key: e.agg_count for e in rebuilt.summary.edges
    }


def test_new_class_and_relation_appear_in_summary(engine):
    boat = URI("http://example.org/aifb/Boat")
    skipper = URI("http://example.org/aifb/skipper1")
    sails = URI("http://example.org/aifb/sails")
    engine.add_triples(
        [
            Triple(skipper, RDF.type, boat),
            Triple(skipper, sails, skipper),
        ]
    )
    assert engine.summary.has_element(("class", boat))
    assert engine.search("boat").candidates
    assert engine.search("sails").candidates


def test_retyping_entity_moves_summary_projections(engine):
    """Typing a previously typed entity with an extra class must reproject
    its relation edges — the core hard case of incremental maintenance."""
    extra = Triple(EX.pub1, RDF.type, EX.Article)
    engine.add_triples([extra])
    rebuilt = KeywordSearchEngine(DataGraph(engine.graph.triples), cost_model="c3", k=10)
    assert {e.key: e.agg_count for e in engine.summary.edges} == {
        e.key: e.agg_count for e in rebuilt.summary.edges
    }
    engine.remove_triples([extra])
    rebuilt2 = KeywordSearchEngine(DataGraph(engine.graph.triples), cost_model="c3", k=10)
    assert {e.key: e.agg_count for e in engine.summary.edges} == {
        e.key: e.agg_count for e in rebuilt2.summary.edges
    }


def test_duplicate_adds_and_absent_removes_are_noops(engine):
    triples = list(engine.graph.triples)
    version = engine.summary.version
    assert engine.add_triples(triples[:3]) == 0
    ghost = Triple(URI("e:ghost"), URI("e:p"), URI("e:q"))
    assert engine.remove_triples([ghost]) == 0
    assert engine.summary.version == version


def test_cost_cache_invalidated_on_update(engine):
    """Search → update → search must use fresh costs, not the cached table."""
    before = engine.search("publication")
    best_before = before.best()
    # Add many researchers: Researcher aggregation grows, its C2/C3 cost drops.
    new = [
        Triple(URI(f"http://example.org/aifb/r{i}"), RDF.type, EX.Researcher)
        for i in range(50)
    ]
    engine.add_triples(new)
    after = engine.search("researcher")
    rebuilt = KeywordSearchEngine(DataGraph(engine.graph.triples), cost_model="c3", k=10)
    expected = rebuilt.search("researcher")
    assert [round(c.cost, 9) for c in after.candidates] == [
        round(c.cost, 9) for c in expected.candidates
    ]
    assert best_before is not None


def test_statistics_invalidated_on_update(engine):
    stats = engine.evaluator._stats
    assert stats.predicate_count(EX.year) >= 1  # populate the cache
    extra = Triple(URI("http://example.org/aifb/px"), EX.year, Literal("1999"))
    engine.add_triples([extra])
    assert stats.predicate_count(EX.year) == engine.store.predicate_cardinality(EX.year)


def test_strict_mode_batch_failure_rolls_back(engine):
    """A strict-mode violation mid-batch must leave the engine untouched:
    no partial data-graph mutation, no index drift, no leaked role refs."""
    from repro.rdf.graph import GraphIntegrityError

    strict_engine = KeywordSearchEngine(
        DataGraph(running_example_graph().triples, strict=True),
        cost_model="c3",
        k=10,
    )
    good = Triple(URI("e:new"), URI("e:knows"), URI("e:other"))
    # EX.Publication is a class; using it as a relation object violates
    # Definition 1 and raises in strict mode.
    bad = Triple(URI("e:new"), URI("e:knows"), EX.Publication)
    triples_before = strict_engine.graph.triples
    stats_before = strict_engine.graph.stats()

    with pytest.raises(GraphIntegrityError):
        strict_engine.add_triples([good, bad])

    assert strict_engine.graph.triples == triples_before
    assert strict_engine.graph.stats() == stats_before
    assert good not in strict_engine.store
    # The engine still works and accepts valid batches afterwards.
    assert strict_engine.add_triples([good]) == 1
    assert good in strict_engine.store


def test_strict_add_is_atomic():
    """A rejected strict add leaves no partial role refcounts behind."""
    from repro.rdf.graph import GraphIntegrityError

    graph = DataGraph(strict=True)
    graph.add(Triple(URI("e:a"), RDF.type, URI("e:C")))
    with pytest.raises(GraphIntegrityError):
        graph.add(Triple(URI("e:b"), URI("e:knows"), URI("e:C")))  # class as entity
    assert URI("e:b") not in graph.entities
    assert not graph._entity_refs.get(URI("e:b"))
    assert not graph._entity_refs.get(URI("e:C"))


def test_search_rejects_invalid_k(engine):
    with pytest.raises(ValueError):
        engine.search("aifb", k=0)
    with pytest.raises(ValueError):
        engine.search("aifb", k=-1)
    with pytest.raises(ValueError):
        engine.search("aifb", dmax=-1)


def test_search_honors_explicit_small_k(engine):
    """k=1 must not silently fall back to the constructor default."""
    result = engine.search("2006 cimiano", k=1)
    assert len(result.candidates) <= 1


def test_search_dmax_zero_registers_seeds_only(engine):
    result = engine.search("publication", dmax=0)
    assert isinstance(result.candidates, list)
