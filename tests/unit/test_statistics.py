"""Unit tests for store cardinality statistics."""

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Variable
from repro.rdf.triples import Triple
from repro.store.statistics import StoreStatistics
from repro.store.triple_store import TripleStore

EX = Namespace("http://t/")


def make_stats():
    store = TripleStore(
        [
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.a, EX.p, EX.c),
            Triple(EX.b, EX.p, EX.c),
            Triple(EX.a, EX.q, EX.b),
        ]
    )
    return store, StoreStatistics(store)


def test_predicate_count_exact_and_cached():
    _, stats = make_stats()
    assert stats.predicate_count(EX.p) == 3
    assert stats.predicate_count(EX.p) == 3  # cached path


def test_estimate_bound_predicate():
    _, stats = make_stats()
    assert stats.estimate(None, EX.p, None) == 3.0


def test_estimate_fully_bound_pattern():
    _, stats = make_stats()
    assert stats.estimate(EX.a, EX.p, None) == 2.0
    assert stats.estimate(None, EX.p, EX.c) == 2.0
    assert stats.estimate(EX.a, EX.p, EX.b) == 1.0


def test_variables_treated_as_free(fake=Variable("x")):
    _, stats = make_stats()
    assert stats.estimate(fake, EX.p, fake) == 3.0


def test_estimate_unbound_predicate_with_endpoint():
    _, stats = make_stats()
    assert stats.estimate(EX.a, None, None) == 3.0


def test_selectivity_in_unit_interval():
    _, stats = make_stats()
    assert 0.0 <= stats.selectivity(None, EX.p, None) <= 1.0
    assert stats.selectivity(None, None, None) == 1.0
