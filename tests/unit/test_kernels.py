"""Unit tests for the numpy exploration kernels (``repro.core.kernels``).

The kernels are an optional accelerator with a byte-identity contract:
every vectorized path must produce exactly what the pure-Python reference
produces — same bound tables, same subgraphs, same diagnostics — or
decline and fall back.  These tests pin the contract at the kernel
boundary; ``tests/property/test_vectorized_identity.py`` pins it
end-to-end through the engine.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core import kernels
from repro.core.engine import KeywordSearchEngine
from repro.core.exploration import (
    _completion_bounds,
    _view_row_of,
    explore_top_k,
    prepare_guided_request,
    prefuse_guided_bounds,
)
from repro.datasets import running_example_graph
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.summary.augmentation import augment


@pytest.fixture
def kernels_on():
    """Guarantee the global kill switch is off, restoring prior state."""
    before = kernels.kernels_enabled()
    kernels.set_enabled(True)
    yield
    kernels.set_enabled(before)


def _ring_graph(n, chord_step=3):
    triples = []
    for i in range(n):
        ent = URI(f"http://t.repro/ent/{i:06d}")
        triples.append(Triple(ent, RDF.type, URI(f"http://t.repro/cls/w{i:06d}")))
        triples.append(
            Triple(
                ent,
                URI("http://t.repro/rel/next"),
                URI(f"http://t.repro/ent/{(i + 1) % n:06d}"),
            )
        )
    if chord_step:
        for i in range(0, n, chord_step):
            triples.append(
                Triple(
                    URI(f"http://t.repro/ent/{i:06d}"),
                    URI("http://t.repro/rel/chord"),
                    URI(f"http://t.repro/ent/{(i * 7 + 3) % n:06d}"),
                )
            )
    return DataGraph(triples)


def _guided_requests(engine, queries):
    """(m, seed_costs, view, cache_key) per query, via the real stages."""
    prepared = []
    for query in queries:
        matches = [m for m in engine.keyword_index.lookup_all(query.split()) if m]
        augmented = augment(engine.summary, matches)
        costs = engine.cost_model.element_costs(augmented)
        request = prepare_guided_request(augmented, costs)
        assert request is not None
        prepared.append(request)
    return prepared


# ----------------------------------------------------------------------
# Status and the kill switch
# ----------------------------------------------------------------------


def test_status_and_kill_switch(kernels_on):
    assert kernels.numpy_available()
    assert kernels.kernels_enabled()
    status = kernels.kernel_status()
    assert status["numpy"] == np.__version__
    assert status["active"] is True and status["disabled"] is False
    assert "active" in kernels.status_line()

    kernels.set_enabled(False)
    assert kernels.numpy_available()  # numpy presence is not the switch
    assert not kernels.kernels_enabled()
    assert kernels.kernel_status()["disabled"] is True
    assert "off" in kernels.status_line()


def test_disabled_kernels_still_explore_identically(kernels_on):
    engine = KeywordSearchEngine(running_example_graph(), guided=True)
    reference = engine.search("cimiano 2006")
    kernels.set_enabled(False)
    disabled = engine.search("cimiano 2006")
    assert [(c.cost, str(c.query)) for c in disabled.candidates] == [
        (c.cost, str(c.query)) for c in reference.candidates
    ]


# ----------------------------------------------------------------------
# Zero-copy CSR views
# ----------------------------------------------------------------------


def test_csr_ndarrays_values_and_caching(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(40), guided=True)
    substrate = engine.summary.exploration_substrate()
    offsets, targets = kernels.csr_ndarrays(substrate)
    assert offsets.dtype == np.int64 and targets.dtype == np.int64
    assert offsets.tolist() == list(substrate.offsets)
    assert targets.tolist() == list(substrate.targets)
    # Cached on the substrate: the views are built once.
    again = kernels.csr_ndarrays(substrate)
    assert again[0] is offsets and again[1] is targets


def test_csr_ndarrays_share_the_backing_buffer(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(40), guided=True)
    substrate = engine.summary.exploration_substrate()
    offsets, _ = kernels.csr_ndarrays(substrate)
    if substrate.offsets.itemsize == 8:  # LP64: zero-copy view
        assert offsets.base is not None


# ----------------------------------------------------------------------
# Fused relaxation vs the scalar oracle
# ----------------------------------------------------------------------


def test_completion_bounds_batch_matches_scalar_oracle(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(80), guided=True)
    queries = [f"w{7 * j % 80:06d} w{(7 * j + 2) % 80:06d}" for j in range(4)]
    prepared = _guided_requests(engine, queries)
    batch = kernels.completion_bounds_batch([p[:3] for p in prepared])
    assert len(batch) == len(prepared)
    for (m, seed_costs, view, _), fused in zip(prepared, batch):
        assert fused is not None
        oracle = _completion_bounds(
            m, seed_costs, _view_row_of(view), view.costs, view.total
        )
        assert fused == oracle  # bit-identical, not approx


def test_single_query_bounds_match_scalar_oracle(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(60), guided=True)
    (m, seed_costs, view, _), = _guided_requests(engine, ["w000007 w000011"])
    [fused] = kernels.completion_bounds_batch([(m, seed_costs, view)])
    assert fused == _completion_bounds(
        m, seed_costs, _view_row_of(view), view.costs, view.total
    )


def test_nonconvergence_falls_back_to_scalar(kernels_on):
    """A bare ring's diameter exceeds the sweep budget: the kernel must
    decline (None) rather than return a non-fixpoint table, and the
    engine must still answer identically through the scalar fallback."""
    engine = KeywordSearchEngine(_ring_graph(400, chord_step=0), guided=True)
    (m, seed_costs, view, _), = _guided_requests(engine, ["w000001 w000003"])
    assert kernels._max_sweeps(view.total) < view.total  # budget genuinely short
    [fused] = kernels.completion_bounds_batch([(m, seed_costs, view)])
    assert fused is None

    vectorized = engine.search("w000001 w000003")
    kernels.set_enabled(False)
    scalar = engine.search("w000001 w000003")
    kernels.set_enabled(True)
    assert [(c.cost, str(c.query)) for c in vectorized.candidates] == [
        (c.cost, str(c.query)) for c in scalar.candidates
    ]


def test_relax_to_fixpoint_on_a_path_graph(kernels_on):
    """Hand-checkable case: a 4-element path with unit entry costs.  Both
    the sparse frontier path (one seeded row) and the dense sweep path
    (fully seeded row at its fixpoint) must land on the same answer."""
    # CSR for path 0-1-2-3 (symmetric, like the substrate's adjacency).
    offsets = np.array([0, 1, 3, 5, 6], dtype=np.int64)
    targets = np.array([1, 0, 2, 1, 3, 2], dtype=np.int64)
    n = 4
    cost_rows = np.ones((2, n))
    dist = np.full((2, n), np.inf)
    dist[0, 0] = 0.0  # sparse: a single seed
    dist[1] = [0.0, 1.0, 2.0, 3.0]  # dense: already the fixpoint
    out, ok = kernels._relax_to_fixpoint(
        dist, offsets, targets, cost_rows, n, None, kernels._max_sweeps(n)
    )
    assert ok
    assert out[0].tolist() == [0.0, 1.0, 2.0, 3.0]
    assert out[1].tolist() == [0.0, 1.0, 2.0, 3.0]


def test_relax_to_fixpoint_with_trailing_empty_row(kernels_on):
    """Regression: a trailing empty CSR row (an isolated element, e.g.
    left behind by a triple removal) must not truncate the *previous*
    row's reduceat segment in the dense sweep.  Star 0-2, 1-2 plus
    isolated element 3: the last non-empty row (2) has two sources, and
    a start index merely clipped in-bounds would silently drop the
    second one — leaving 2 (and everything behind it) at infinity."""
    offsets = np.array([0, 1, 2, 4, 4], dtype=np.int64)
    targets = np.array([2, 2, 0, 1], dtype=np.int64)
    n = 4
    cost_rows = np.ones((2, n))
    dist = np.full((2, n), np.inf)
    dist[0, 1] = 0.0  # only 2's *second* source is seeded
    dist[1] = [0.0, 4.0, np.inf, np.inf]
    out, ok = kernels._relax_to_fixpoint(
        dist, offsets, targets, cost_rows, n, None, kernels._max_sweeps(n)
    )
    assert ok
    assert out[0].tolist() == [2.0, 0.0, 1.0, np.inf]
    assert out[1].tolist() == [0.0, 2.0, 1.0, np.inf]


# ----------------------------------------------------------------------
# Prefusing through the exploration/engine layer
# ----------------------------------------------------------------------


def test_prefuse_populates_the_bounds_cache_once(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(60), guided=True)
    substrate = engine.summary.exploration_substrate()
    queries = ["w000002 w000004", "w000009 w000011"]

    def requests():
        out = []
        for query in queries:
            matches = [m for m in engine.keyword_index.lookup_all(query.split()) if m]
            augmented = augment(engine.summary, matches)
            out.append((augmented, engine.cost_model.element_costs(augmented)))
        return out

    assert prefuse_guided_bounds(requests()) == 2
    # Second pass: every table is already cached.
    assert prefuse_guided_bounds(requests()) == 0
    substrate.clear_bounds()
    assert prefuse_guided_bounds(requests()) == 2


def test_prefuse_dedups_identical_queries(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(60), guided=True)

    def requests():
        out = []
        for query in ["w000002 w000004"] * 3:
            matches = [m for m in engine.keyword_index.lookup_all(query.split()) if m]
            augmented = augment(engine.summary, matches)
            out.append((augmented, engine.cost_model.element_costs(augmented)))
        return out

    engine.summary.exploration_substrate().clear_bounds()
    assert prefuse_guided_bounds(requests()) == 1


def test_prefuse_on_snapshot_requires_guided(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(60), guided=False)
    snapshot = engine.snapshot()
    assert engine.prefuse_bounds_on_snapshot(snapshot, ["w000002 w000004"]) == 0


def test_prefuse_on_snapshot_skips_malformed_queries(kernels_on):
    engine = KeywordSearchEngine(_ring_graph(60), guided=True)
    snapshot = engine.snapshot()
    count = engine.prefuse_bounds_on_snapshot(
        snapshot, ["", "   ", "zzz-no-such-keyword", "w000002 w000004"]
    )
    assert count == 1


def test_forced_vectorized_explores_identically_below_threshold(kernels_on):
    """``use_vectorized=True`` overrides MIN_BOUNDS_TOTAL: even on a tiny
    graph the kernel path must match the scalar reference exactly."""
    engine = KeywordSearchEngine(running_example_graph(), guided=True)
    matches = [m for m in engine.keyword_index.lookup_all(["cimiano", "aifb"]) if m]
    augmented = augment(engine.summary, matches)
    costs = engine.cost_model.element_costs(augmented)
    assert len(engine.summary) < kernels.MIN_BOUNDS_TOTAL
    vec = explore_top_k(augmented, costs, k=5, guided=True, use_vectorized=True)
    ref = explore_top_k(augmented, costs, k=5, guided=True, use_vectorized=False)
    assert [sg.elements for sg in vec.subgraphs] == [sg.elements for sg in ref.subgraphs]
    assert [sg.cost for sg in vec.subgraphs] == [sg.cost for sg in ref.subgraphs]
    assert vec.cursors_created == ref.cursors_created
    assert vec.cursors_popped == ref.cursors_popped
    assert vec.cursors_pruned == ref.cursors_pruned
    assert vec.candidates_offered == ref.candidates_offered
    assert vec.terminated_by == ref.terminated_by
    assert vec.max_queue_size == ref.max_queue_size
