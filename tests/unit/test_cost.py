"""Unit tests for the cost models C1/C2/C3 (Section V)."""

import pytest

from repro.datasets.example import EX
from repro.keyword.keyword_index import ClassMatch, ValueMatch
from repro.rdf.terms import Literal
from repro.scoring.cost import (
    KeywordMatchCost,
    PathLengthCost,
    PopularityCost,
    make_cost_model,
)
from repro.summary.augmentation import augment
from repro.summary.summary_graph import SummaryGraph


@pytest.fixture(scope="module")
def augmented(example_graph):
    summary = SummaryGraph.from_data_graph(example_graph)
    matches = [
        [ValueMatch(Literal("AIFB"), frozenset({(EX.name, EX.Institute)}), 0.5)],
        [ClassMatch(EX.Publication, 0.8)],
    ]
    return augment(summary, matches)


class TestPathLength:
    def test_every_element_costs_one(self, augmented):
        costs = PathLengthCost().element_costs(augmented)
        assert costs
        assert all(c == 1.0 for c in costs.values())

    def test_covers_all_elements(self, augmented):
        costs = PathLengthCost().element_costs(augmented)
        assert len(costs) == len(augmented.graph)


class TestPopularity:
    def test_popular_class_cheaper(self, augmented):
        costs = PopularityCost().element_costs(augmented)
        # Researcher aggregates 2 entities, Publication 2, Project 2,
        # Institute 2 — compare against a single-instance situation instead:
        # all class costs must be strictly below 1 (every class has instances).
        for vertex in augmented.graph.vertices:
            if vertex.key[0] == "class" and vertex.agg_count > 0:
                assert costs[vertex.key] < 1.0

    def test_popular_relation_cheaper_than_rare(self, augmented):
        costs = PopularityCost().element_costs(augmented)
        author = next(e for e in augmented.graph.edges if e.name == "author")
        has_project = next(
            e for e in augmented.graph.edges if e.name == "hasProject"
        )
        assert costs[author.key] < costs[has_project.key]

    def test_value_vertices_cost_one(self, augmented):
        costs = PopularityCost().element_costs(augmented)
        assert costs[("value", Literal("AIFB"))] == 1.0

    def test_attribute_edges_cost_one(self, augmented):
        costs = PopularityCost().element_costs(augmented)
        key = ("edge", EX.name, ("class", EX.Institute), ("value", Literal("AIFB")))
        assert costs[key] == 1.0

    def test_costs_positive(self, augmented):
        costs = PopularityCost().element_costs(augmented)
        assert all(c > 0 for c in costs.values())

    def test_literal_normalization_variant(self, augmented):
        costs = PopularityCost(literal_normalization=True).element_costs(augmented)
        assert all(c > 0 for c in costs.values())


class TestKeywordMatch:
    def test_keyword_elements_divided_by_score(self, augmented):
        base = PopularityCost()
        c3 = KeywordMatchCost(base=base)
        base_costs = base.element_costs(augmented)
        c3_costs = c3.element_costs(augmented)
        value_key = ("value", Literal("AIFB"))
        assert c3_costs[value_key] == pytest.approx(base_costs[value_key] / 0.5)
        class_key = ("class", EX.Publication)
        assert c3_costs[class_key] == pytest.approx(base_costs[class_key] / 0.8)

    def test_non_keyword_elements_unchanged(self, augmented):
        base = PopularityCost()
        c3 = KeywordMatchCost(base=base)
        base_costs = base.element_costs(augmented)
        c3_costs = c3.element_costs(augmented)
        key = ("class", EX.Researcher)
        assert c3_costs[key] == pytest.approx(base_costs[key])

    def test_higher_score_cheaper(self, augmented):
        c3_costs = KeywordMatchCost().element_costs(augmented)
        # score 0.8 element must be cheaper relative to its base than 0.5 one
        value_key = ("value", Literal("AIFB"))  # sm=0.5, base 1.0
        assert c3_costs[value_key] == pytest.approx(2.0)

    def test_min_score_floor(self, augmented):
        c3 = KeywordMatchCost(min_score=0.5)
        # A score below the floor is clamped; costs stay bounded.
        costs = c3.element_costs(augmented)
        assert all(c <= 2.5 for c in costs.values())


class TestFactory:
    @pytest.mark.parametrize("name", ["c1", "c2", "c3", "pagerank"])
    def test_known_models(self, name):
        assert make_cost_model(name).name == name

    def test_case_insensitive(self):
        assert make_cost_model("C1").name == "c1"

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            make_cost_model("c9")
