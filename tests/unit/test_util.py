"""Unit tests for shared utilities."""

from repro.util import LruDict


def test_hit_refreshes_recency():
    cache = LruDict(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.hit("a") == 1
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.hit("b") is None
    assert cache.hit("a") == 1
    assert cache.hit("c") == 3


def test_put_evicts_beyond_maxsize():
    cache = LruDict(3)
    for i in range(10):
        cache.put(i, i + 1)
    assert len(cache) == 3
    assert list(cache) == [7, 8, 9]


def test_miss_returns_none():
    assert LruDict(1).hit("missing") is None
