"""Unit tests for the end-to-end engine facade."""

import pytest

from repro.core.engine import KeywordSearchEngine, split_keywords
from repro.datasets.example import EX, running_example_graph
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, Variable


@pytest.fixture(scope="module")
def engine(example_graph):
    return KeywordSearchEngine(example_graph, cost_model="c3", k=5)


class TestSplitKeywords:
    def test_whitespace(self):
        assert split_keywords("a b  c") == ["a", "b", "c"]

    def test_quoted_phrase(self):
        assert split_keywords('cimiano "x media" 2006') == ["cimiano", "x media", "2006"]

    def test_unclosed_quote(self):
        assert split_keywords('"abc def') == ["abc def"]

    def test_empty(self):
        assert split_keywords("") == []


class TestSearch:
    def test_returns_ranked_candidates(self, engine):
        result = engine.search("2006 cimiano aifb", k=5)
        assert len(result) >= 1
        assert [c.rank for c in result] == list(range(1, len(result) + 1))
        costs = [c.cost for c in result]
        assert costs == sorted(costs)

    def test_top_query_is_fig1c(self, engine):
        result = engine.search("2006 cimiano aifb", k=5)
        expected_atoms = {
            Atom(RDF.type, Variable("x"), EX.Publication),
            Atom(EX.year, Variable("x"), Literal("2006")),
            Atom(EX.author, Variable("x"), Variable("y")),
            Atom(EX.name, Variable("y"), Literal("P. Cimiano")),
            Atom(EX.worksAt, Variable("y"), Variable("z")),
            Atom(EX.name, Variable("z"), Literal("AIFB")),
        }
        top = result.best().query
        # Compare modulo renaming via isomorphism against the expectation
        # plus the faithful type atoms for y and z.
        from repro.query.isomorphism import queries_isomorphic

        full_expected = ConjunctiveQuery(
            expected_atoms
            | {
                Atom(RDF.type, Variable("y"), EX.Researcher),
                Atom(RDF.type, Variable("z"), EX.Institute),
            }
        )
        assert queries_isomorphic(top, full_expected)

    def test_keyword_list_input(self, engine):
        result = engine.search(["aifb", "2006"], k=3)
        assert len(result) >= 1

    def test_unknown_keyword_ignored_and_reported(self, engine):
        result = engine.search("aifb zzzunknownzzz", k=3)
        assert result.ignored_keywords == ["zzzunknownzzz"]
        assert len(result) >= 1

    def test_strict_mode_raises_on_unknown(self, example_graph):
        engine = KeywordSearchEngine(example_graph, strict_keywords=True)
        with pytest.raises(KeyError):
            engine.search("aifb zzzunknownzzz")

    def test_no_keywords_matched(self, engine):
        result = engine.search("zzz yyy", k=3)
        assert len(result) == 0
        assert result.exploration is None

    def test_timings_populated(self, engine):
        result = engine.search("aifb 2006")
        for key in ("keyword_mapping", "augmentation", "exploration",
                    "query_mapping", "total"):
            assert result.timings[key] >= 0

    def test_queries_deduplicated(self, engine):
        result = engine.search("2006 cimiano aifb", k=5)
        from repro.query.isomorphism import canonical_form

        forms = [canonical_form(q) for q in result.queries]
        assert len(forms) == len(set(forms))

    def test_candidates_render(self, engine):
        candidate = engine.search("aifb 2006").best()
        assert "SELECT" in candidate.to_sparql()
        assert "FROM Ex" in candidate.to_sql()
        assert candidate.verbalize().endswith(".")


class TestExecution:
    def test_execute_candidate(self, engine):
        result = engine.search("2006 cimiano aifb", k=3)
        answers = engine.execute(result.best())
        assert len(answers) == 1

    def test_execute_plain_query(self, engine):
        query = ConjunctiveQuery([Atom(RDF.type, Variable("x"), EX.Publication)])
        assert len(engine.execute(query)) == 2

    def test_execute_with_limit(self, engine):
        query = ConjunctiveQuery([Atom(RDF.type, Variable("x"), EX.Publication)])
        assert len(engine.execute(query, limit=1)) == 1

    def test_search_and_execute_protocol(self, engine):
        outcome = engine.search_and_execute("2006 cimiano aifb", k=5, min_answers=3)
        assert outcome["answers"]
        assert outcome["queries_used"]
        assert outcome["total_seconds"] >= 0
        assert outcome["computation_seconds"] >= 0


class TestConfiguration:
    def test_cost_model_instance_accepted(self, example_graph):
        from repro.scoring.cost import PathLengthCost

        engine = KeywordSearchEngine(example_graph, cost_model=PathLengthCost())
        assert engine.cost_model.name == "c1"

    def test_shared_indices_reused(self, example_graph, engine):
        other = KeywordSearchEngine(
            example_graph,
            cost_model="c1",
            summary=engine.summary,
            keyword_index=engine.keyword_index,
        )
        assert other.summary is engine.summary
        assert other.keyword_index is engine.keyword_index

    def test_from_triples(self, example_graph):
        engine = KeywordSearchEngine.from_triples(list(example_graph))
        assert len(engine.graph) == len(example_graph)

    def test_index_stats(self, engine):
        stats = engine.index_stats()
        assert stats["keyword_index"]["terms"] > 0
        assert stats["graph_index"]["vertices"] > 0
        assert stats["data_graph"]["triples"] == 21


def _memoized(first, second):
    """True when ``second`` was served from the search-result cache.

    Cache hits are container-fresh copies sharing the originally computed
    internals — same exploration diagnostics object, same candidate
    objects, and the original timings values.
    """
    return (
        second is not first
        and second.exploration is first.exploration
        and second.timings == first.timings
        and all(a is b for a, b in zip(second.candidates, first.candidates))
    )


class TestSearchResultCache:
    def test_disabled_by_default(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5)
        first = engine.search("aifb 2006")
        assert not _memoized(first, engine.search("aifb 2006"))

    def test_repeated_query_served_from_cache(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=8)
        first = engine.search("aifb 2006")
        assert _memoized(first, engine.search("aifb 2006"))
        # Different effective parameters miss.
        assert not _memoized(first, engine.search("aifb 2006", k=3))
        assert not _memoized(first, engine.search("aifb 2006", dmax=4))

    def test_explicit_matches_bypass_cache(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=8)
        first = engine.search("aifb")
        override = engine.keyword_index.lookup_all(["aifb"])
        assert not _memoized(first, engine.search("aifb", matches=override))
        # ... and never pollute it.
        assert _memoized(first, engine.search("aifb"))

    def test_caller_mutation_cannot_poison_the_cache(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=8)
        first = engine.search("aifb 2006")
        assert first.candidates
        first.candidates.clear()
        first.timings.clear()
        again = engine.search("aifb 2006")
        assert again.candidates
        assert "total" in again.timings

    def test_updates_invalidate_cache(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=8)
        first = engine.search("aifb 2006")
        triple = next(iter(engine.graph.triples))
        engine.remove_triples([triple])
        after_remove = engine.search("aifb 2006")
        assert not _memoized(first, after_remove)
        engine.add_triples([triple])
        restored = engine.search("aifb 2006")
        assert not _memoized(first, restored)
        assert not _memoized(after_remove, restored)
        # Re-adding restored the data: results are equal, objects fresh.
        assert [c.cost for c in restored.candidates] == [
            c.cost for c in first.candidates
        ]

    def test_lru_eviction(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=1)
        first = engine.search("aifb")
        engine.search("2006")  # evicts "aifb"
        assert not _memoized(first, engine.search("aifb"))


class TestFilterSearchParameters:
    def test_dmax_and_max_cursors_threaded_to_search(self, example_graph, monkeypatch):
        engine = KeywordSearchEngine(example_graph, k=5)
        captured = {}
        original = KeywordSearchEngine.search

        def spy(self, *args, **kwargs):
            captured.update(kwargs)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KeywordSearchEngine, "search", spy)
        engine.search_with_filters("cimiano before 2007", k=3, dmax=6, max_cursors=500)
        assert captured["k"] == 3
        assert captured["dmax"] == 6
        assert captured["max_cursors"] == 500

    def test_tight_dmax_constrains_filtered_search(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5)
        wide = engine.search_with_filters("cimiano before 2007")
        narrow = engine.search_with_filters("cimiano before 2007", dmax=0)
        assert len(narrow) <= len(wide)


class TestEmptyQueryRejected:
    """An empty keyword query is an input error, not "zero candidates"."""

    def test_empty_string(self, engine):
        with pytest.raises(ValueError, match="empty keyword query"):
            engine.search("")

    def test_whitespace_only_string(self, engine):
        with pytest.raises(ValueError, match="empty keyword query"):
            engine.search("   \t ")

    def test_empty_list(self, engine):
        with pytest.raises(ValueError, match="empty keyword query"):
            engine.search([])

    def test_all_whitespace_keywords(self, engine):
        with pytest.raises(ValueError, match="empty keyword query"):
            engine.search(["  ", "\t"])

    def test_nonempty_query_still_works(self, engine):
        assert engine.search("cimiano").keywords == ["cimiano"]


class TestSnapshotPipeline:
    """search == snapshot acquisition + pure stages on that snapshot."""

    def test_search_on_snapshot_matches_search(self, engine):
        snapshot = engine.snapshot()
        direct = engine.search("2006 cimiano aifb", k=5)
        via_snapshot = engine.search_on_snapshot(snapshot, "2006 cimiano aifb", k=5)
        assert [str(c.query) for c in direct] == [str(c.query) for c in via_snapshot]
        assert [c.cost for c in direct] == [c.cost for c in via_snapshot]

    def test_snapshot_carries_engine_defaults(self, engine):
        snapshot = engine.snapshot()
        assert snapshot.k == engine.k
        assert snapshot.dmax == engine.dmax
        assert snapshot.guided == engine.guided
        assert snapshot.key == (
            engine.summary.snapshot_key,
            engine.keyword_index.snapshot_key,
        )

    def test_cache_stats_shape(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=4)
        engine.search("cimiano")
        engine.search("cimiano")
        stats = engine.cache_stats()
        assert stats["search_results"]["hits"] == 1
        assert stats["search_results"]["misses"] == 1
        assert "keyword_lookups" in stats
