"""Golden-file format, report deltas, and the baseline gate logic."""

import json

import pytest

from repro.quality.goldens import (
    GOLDEN_FORMAT,
    GoldenCase,
    GoldenFile,
    GoldenFormatError,
    load_goldens,
    save_goldens,
)
from repro.quality.reports import (
    REPORT_FORMAT,
    compare_to_baseline,
    diff_reports,
    load_baseline,
    load_report,
    metric_deltas,
    save_baseline,
    write_report,
)


def _case(qid="Q1", **overrides):
    payload = dict(
        qid=qid,
        keywords=["cimiano", "2006"],
        description="test case",
        intent_qid=qid,
        expected_queries=[{"signature": "cq:x", "relevance": 3}],
        expected_answers=[{"signature": "?x=<a>", "relevance": 2}],
        provenance={"blessed": True},
    )
    payload.update(overrides)
    return GoldenCase(**payload)


class TestGoldenRoundTrip:
    def test_save_load_identity(self, tmp_path):
        path = str(tmp_path / "g.jsonl")
        original = GoldenFile("example", [_case("Q1"), _case("Q2")], {"eval_k": 10})
        save_goldens(original, path)
        loaded = load_goldens(path)
        assert loaded.dataset == "example"
        assert loaded.meta["eval_k"] == 10
        assert loaded.meta["golden_format"] == GOLDEN_FORMAT
        assert [c.as_dict() for c in loaded] == [c.as_dict() for c in original]

    def test_relevance_maps(self):
        case = _case()
        assert case.query_relevance() == {"cq:x": 3.0}
        assert case.answer_relevance() == {"?x=<a>": 2.0}


def _write_lines(tmp_path, *lines):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as fh:
        fh.write("\n".join(json.dumps(l) if isinstance(l, dict) else l for l in lines))
    return path


META = {"golden_format": GOLDEN_FORMAT, "dataset": "example"}


class TestGoldenValidation:
    def test_missing_meta_header(self, tmp_path):
        path = _write_lines(tmp_path, {"qid": "Q1", "keywords": ["a"]})
        with pytest.raises(GoldenFormatError, match="meta header"):
            load_goldens(path)

    def test_empty_file(self, tmp_path):
        path = _write_lines(tmp_path, "")
        with pytest.raises(GoldenFormatError, match="empty"):
            load_goldens(path)

    def test_wrong_format_version(self, tmp_path):
        path = _write_lines(tmp_path, {"golden_format": 999, "dataset": "x"})
        with pytest.raises(GoldenFormatError, match="999"):
            load_goldens(path)

    def test_meta_needs_dataset(self, tmp_path):
        path = _write_lines(tmp_path, {"golden_format": GOLDEN_FORMAT})
        with pytest.raises(GoldenFormatError, match="dataset"):
            load_goldens(path)

    def test_duplicate_qid(self, tmp_path):
        case = {"qid": "Q1", "keywords": ["a"]}
        path = _write_lines(tmp_path, META, case, case)
        with pytest.raises(GoldenFormatError, match="duplicate qid"):
            load_goldens(path)

    def test_empty_keywords(self, tmp_path):
        path = _write_lines(tmp_path, META, {"qid": "Q1", "keywords": []})
        with pytest.raises(GoldenFormatError, match="keywords"):
            load_goldens(path)

    def test_nonpositive_relevance(self, tmp_path):
        case = {
            "qid": "Q1",
            "keywords": ["a"],
            "expected_queries": [{"signature": "s", "relevance": 0}],
        }
        path = _write_lines(tmp_path, META, case)
        with pytest.raises(GoldenFormatError, match="relevance"):
            load_goldens(path)

    def test_duplicate_signature(self, tmp_path):
        case = {
            "qid": "Q1",
            "keywords": ["a"],
            "expected_answers": [
                {"signature": "s", "relevance": 1},
                {"signature": "s", "relevance": 2},
            ],
        }
        path = _write_lines(tmp_path, META, case)
        with pytest.raises(GoldenFormatError, match="duplicate signature"):
            load_goldens(path)

    def test_invalid_json_names_the_line(self, tmp_path):
        path = _write_lines(tmp_path, META, "{not json")
        with pytest.raises(GoldenFormatError, match="line 2"):
            load_goldens(path)


def _report(aggregates, counts=None, cases=(), dataset="example"):
    return {
        "dataset": dataset,
        "eval_k": 10,
        "answer_depth": 20,
        "num_cases": len(cases) or 2,
        "cases": list(cases),
        "aggregates": aggregates,
        "counts": counts or {name: 2 for name in aggregates},
    }


class TestMetricDeltas:
    def test_deltas(self):
        deltas = metric_deltas({"m": 0.75, "n": None}, {"m": 0.5, "n": 0.9})
        assert deltas["m"]["delta"] == pytest.approx(0.25)
        assert deltas["n"] == {"current": None, "previous": 0.9, "delta": None}

    def test_one_sided_metrics_listed(self):
        deltas = metric_deltas({"new": 1.0}, {"old": 1.0})
        assert deltas["new"]["previous"] is None
        assert deltas["old"]["current"] is None


class TestReportLifecycle:
    def test_first_write_then_deltas(self, tmp_path):
        reports_dir = str(tmp_path / "reports")
        first = _report({"m": 0.5})
        first["generated_at"] = "20260101T000000"
        paths = write_report(first, reports_dir)
        assert first["deltas_vs_previous"] is None
        assert load_report(paths["latest"])["report_format"] == REPORT_FORMAT

        second = _report({"m": 0.75})
        second["generated_at"] = "20260102T000000"
        write_report(second, reports_dir)
        assert second["deltas_vs_previous"]["m"]["delta"] == pytest.approx(0.25)
        assert second["previous_generated_at"] == "20260101T000000"

    def test_history_accumulates(self, tmp_path):
        import os

        reports_dir = str(tmp_path / "reports")
        for stamp in ("20260101T000000", "20260102T000000"):
            report = _report({"m": 0.5})
            report["generated_at"] = stamp
            write_report(report, reports_dir)
        assert len(os.listdir(os.path.join(reports_dir, "history"))) == 2

    def test_load_report_rejects_other_formats(self, tmp_path):
        path = str(tmp_path / "r.json")
        with open(path, "w") as fh:
            json.dump({"report_format": 999}, fh)
        with pytest.raises(ValueError, match="999"):
            load_report(path)


class TestBaselineGate:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": 0.5}), path)
        baseline = load_baseline(path)
        assert baseline["aggregates"] == {"m": 0.5}
        assert baseline["dataset"] == "example"

    def test_passes_at_baseline_and_above(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": 0.5}), path)
        baseline = load_baseline(path)
        assert compare_to_baseline(_report({"m": 0.5}), baseline) == []
        assert compare_to_baseline(_report({"m": 0.9}), baseline) == []

    def test_fails_below_baseline(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": 0.5}), path)
        failures = compare_to_baseline(_report({"m": 0.4}), load_baseline(path))
        assert [f["metric"] for f in failures] == ["m"]
        assert failures[0]["reason"] == "below baseline"

    def test_fails_when_metric_goes_undefined(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": 0.5}), path)
        failures = compare_to_baseline(
            _report({"m": None}, counts={"m": 0}), load_baseline(path)
        )
        reasons = {f["reason"] for f in failures}
        assert "metric undefined (was defined at baseline)" in reasons

    def test_fails_when_coverage_shrinks(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": 0.5}, counts={"m": 2}), path)
        failures = compare_to_baseline(
            _report({"m": 0.5}, counts={"m": 1}), load_baseline(path)
        )
        assert any("coverage" in f["reason"] for f in failures)

    def test_undefined_baseline_metrics_do_not_gate(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": None}, counts={"m": 0}), path)
        assert (
            compare_to_baseline(
                _report({"m": None}, counts={"m": 0}), load_baseline(path)
            )
            == []
        )

    def test_tolerance(self, tmp_path):
        path = str(tmp_path / "b.json")
        save_baseline(_report({"m": 0.5}), path)
        baseline = load_baseline(path)
        assert compare_to_baseline(_report({"m": 0.499}), baseline, tolerance=0.01) == []
        assert compare_to_baseline(_report({"m": 0.4}), baseline, tolerance=0.01)


class TestDiffReports:
    def test_diff_shapes(self):
        case_a = {"qid": "Q1", "metrics": {"m": 1.0}}
        case_b = {"qid": "Q1", "metrics": {"m": 0.5}}
        only_a = {"qid": "Q2", "metrics": {"m": 1.0}}
        diff = diff_reports(
            _report({"m": 1.0}, cases=[case_a, only_a]),
            _report({"m": 0.5}, cases=[case_b]),
        )
        assert diff["aggregates"]["m"]["delta"] == pytest.approx(0.5)
        assert diff["cases"]["Q1"]["m"]["delta"] == pytest.approx(0.5)
        assert diff["only_in_a"] == ["Q2"]
        assert diff["only_in_b"] == []
