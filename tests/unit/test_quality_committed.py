"""The committed eval artifacts must stay loadable and internally sound.

A golden file that no longer parses, or a baseline whose metrics the
format cannot read, would disable the CI quality gate silently — these
tests make that a tier-1 failure instead.
"""

import json
import os

import pytest

from repro.datasets import DATASET_NAMES, effectiveness_workload
from repro.quality import load_baseline, load_goldens

EVAL_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "eval")
DATASETS = sorted(DATASET_NAMES)


@pytest.mark.parametrize("dataset", DATASETS)
def test_committed_goldens_parse_and_are_blessed(dataset):
    goldens = load_goldens(os.path.join(EVAL_DIR, "goldens", f"{dataset}.jsonl"))
    assert goldens.dataset == dataset
    assert len(goldens) > 0
    assert all(c.provenance.get("blessed") for c in goldens)


@pytest.mark.parametrize("dataset", DATASETS)
def test_committed_goldens_reference_real_workload_queries(dataset):
    goldens = load_goldens(os.path.join(EVAL_DIR, "goldens", f"{dataset}.jsonl"))
    workload_qids = {wq.qid for wq in effectiveness_workload(dataset)}
    for case in goldens:
        if case.intent_qid is not None:
            assert case.intent_qid in workload_qids, case.qid


@pytest.mark.parametrize("dataset", DATASETS)
def test_committed_baselines_load(dataset):
    baseline = load_baseline(
        os.path.join(EVAL_DIR, "baselines", f"{dataset}.json")
    )
    assert baseline["dataset"] == dataset
    defined = {
        name: value
        for name, value in baseline["aggregates"].items()
        if value is not None
    }
    assert defined, "a baseline with no defined metrics gates nothing"
    for name, value in defined.items():
        assert 0.0 <= value <= 1.0, (name, value)
        assert baseline["counts"][name] > 0, name


@pytest.mark.parametrize("dataset", DATASETS)
def test_goldens_and_baseline_case_counts_agree(dataset):
    goldens = load_goldens(os.path.join(EVAL_DIR, "goldens", f"{dataset}.jsonl"))
    baseline = load_baseline(
        os.path.join(EVAL_DIR, "baselines", f"{dataset}.json")
    )
    assert baseline["num_cases"] == len(goldens)
