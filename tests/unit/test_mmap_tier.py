"""Unit tests for the mmap-resident serving tier (repro.storage.mmap_tier).

The property suite (tests/property/test_mmap_tier_identity.py) proves
end-to-end behavioral identity; these tests pin the component contracts
the identity rests on — binary-searched term lookup over the sorted
permutation, pattern-complete triple matching against the sorted runs,
delta/tombstone overlay bookkeeping, and the postings-LRU counters the
service's ``/stats`` endpoint reports.
"""

import itertools

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.example import running_example_graph
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, XSD
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.storage import MmapInvertedIndex, MmapTripleTier, load_bundle
from repro.store.triple_store import TripleStore


@pytest.fixture(scope="module")
def example_bundle(tmp_path_factory):
    graph = running_example_graph()
    # Exercise every term shape the wire codec distinguishes: plain,
    # typed, and language-tagged literals alongside URIs and bnodes.
    ex = "http://example.org/mmapunit/"
    extra = [
        Triple(URI(ex + "d1"), URI(ex + "score"), Literal("42", datatype=XSD.integer)),
        Triple(URI(ex + "d1"), URI(ex + "motto"), Literal("hello", language="en")),
        Triple(URI(ex + "d1"), RDF.type, URI(ex + "Doc")),
    ]
    triples = list(graph.triples) + extra
    engine = KeywordSearchEngine(DataGraph(triples))
    path = tmp_path_factory.mktemp("mmap-unit") / "e.reprobundle"
    engine.save(path)
    return engine, path


@pytest.fixture()
def mapped(example_bundle):
    _, path = example_bundle
    return load_bundle(path, index_tier="mmap")


def test_term_table_round_trips_every_term(example_bundle, mapped):
    engine, _ = example_bundle
    table = mapped.store._terms
    seen = set()
    for i in range(len(table)):
        term = table[i]
        seen.add(term)
        # id_of is the inverse of decoding, for every stored shape.
        assert table.id_of(term) == i
    for triple in engine.graph.triples:
        assert triple.subject in seen
        assert triple.predicate in seen
        assert triple.object in seen


def test_term_table_absent_terms_return_none(mapped):
    table = mapped.store._terms
    assert table.id_of(URI("http://example.org/absent")) is None
    assert table.id_of(Literal("no-such-lexical-form")) is None
    assert table.id_of(Literal("42", datatype=URI("http://example.org/noDT"))) is None
    assert table.id_of(Literal("hello", language="zz")) is None


def test_triple_tier_matches_every_pattern(example_bundle, mapped):
    engine, _ = example_bundle
    tier = mapped.store
    assert isinstance(tier, MmapTripleTier)
    reference = TripleStore(engine.graph.triples)
    assert len(tier) == len(reference)

    triples = list(engine.graph.triples)
    probes = [triples[0], triples[len(triples) // 2], triples[-1]]
    absent = Triple(URI("http://example.org/nope"), URI("http://example.org/p"), Literal("x"))
    for t in probes:
        for s, p, o in itertools.product((t.subject, None), (t.predicate, None), (t.object, None)):
            expect = sorted(map(repr, reference.match(s, p, o)))
            got = sorted(map(repr, tier.match(s, p, o)))
            assert got == expect, (s, p, o)
            assert tier.count(s, p, o) == reference.count(s, p, o), (s, p, o)
    assert list(tier.match(absent.subject, absent.predicate, absent.object)) == []
    assert absent not in tier
    assert probes[0] in tier
    # Ill-typed patterns match nothing instead of erroring.
    assert list(tier.match(Literal("lit-subject"), None, None)) == []
    assert tier.count(None, Literal("lit-predicate"), None) == 0
    assert sorted(map(repr, tier.predicates())) == sorted(map(repr, reference.predicates()))
    for pred in reference.predicates():
        assert tier.predicate_cardinality(pred) == reference.predicate_cardinality(pred)


def test_triple_tier_overlay_add_remove(example_bundle, mapped):
    engine, _ = example_bundle
    tier = mapped.store
    reference = TripleStore(engine.graph.triples)
    base = list(engine.graph.triples)
    fresh = Triple(URI("http://example.org/new"), URI("http://example.org/p"), Literal("v"))
    victim = base[3]

    for store in (tier, reference):
        assert store.add(fresh) is True
        assert store.add(fresh) is False  # already present
        assert store.remove(victim) is True
        assert store.remove(victim) is False  # already gone
    assert len(tier) == len(reference)
    assert sorted(map(repr, tier.match())) == sorted(map(repr, reference.match()))

    # Un-tombstoning: re-adding a removed base triple revives the mapped
    # row instead of duplicating it in the delta.
    for store in (tier, reference):
        assert store.add(victim) is True
        assert store.remove(fresh) is True
    assert len(tier) == len(reference)
    assert sorted(map(repr, tier.match())) == sorted(map(repr, reference.match()))


def test_inverted_index_lookup_and_tombstones(example_bundle, mapped):
    engine, _ = example_bundle
    inverted = mapped.keyword_index._index
    assert isinstance(inverted, MmapInvertedIndex)
    reference = engine.keyword_index._index

    assert sorted(inverted.vocabulary) == sorted(reference.vocabulary)
    for term in reference.vocabulary:
        assert inverted.document_frequency(term) == reference.document_frequency(term)
        assert sorted(map(repr, inverted.lookup(term))) == sorted(
            map(repr, reference.lookup(term))
        ), term

    # Unindex an element: its postings disappear from every term; the
    # remaining base rows survive the tombstone filter untouched.
    victim = next(iter(reference.lookup("public")))  # best-scored posting
    element = victim.element
    assert inverted.unindex(element) is True
    assert inverted.unindex(element) is False
    for term in reference.vocabulary:
        live = [p for p in reference.lookup(term) if p.element != element]
        assert sorted(map(repr, inverted.lookup(term))) == sorted(map(repr, live)), term

    # Re-index through the delta: lookups see base rows then delta rows,
    # matching a materialized dict's delete/reinsert-at-end ordering.
    inverted.index(element, ["public", "public", "reborn"])
    assert inverted.document_frequency("reborn") == 1
    rows = inverted.lookup("public")
    assert rows[-1].element == element and rows[-1].term_frequency == 2


def test_postings_lru_counters(mapped):
    inverted = mapped.keyword_index._index
    stats = inverted.cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 0
    inverted.lookup("public")
    inverted.lookup("public")
    stats = inverted.cache_stats()
    assert stats["misses"] == 1 and stats["hits"] >= 1
    assert set(stats) == {"size", "maxsize", "hits", "misses", "hit_rate"}


def test_engine_stats_report_tier(example_bundle):
    _, path = example_bundle
    mm = KeywordSearchEngine.load(path, attach_wal=False, index_tier="mmap")
    mem = KeywordSearchEngine.load(path, attach_wal=False)
    assert mm.index_tier == "mmap" and mem.index_tier == "memory"
    assert mm.artifact["index_tier"] == "mmap"
    assert mm.keyword_index.index_tier == "mmap"
    assert mem.keyword_index.postings_cache_stats() is None
    mm.search("publication")
    stats = mm.cache_stats()
    assert "postings" in stats and stats["postings"]["misses"] > 0
    assert "postings" not in mem.cache_stats()
