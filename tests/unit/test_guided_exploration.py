"""Unit tests for distance-guided exploration (the 'indexing connectivity'
speed-up of Sections VI-A and IX)."""

import pytest

from repro.core.exploration import _dijkstra, explore_top_k
from repro.rdf.terms import URI
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.elements import SummaryEdgeKind
from repro.summary.summary_graph import SummaryGraph

from tests.unit.test_exploration import (
    augmented_for,
    build_line_graph,
    uniform_costs,
)


class TestDijkstra:
    def test_line_distances(self):
        # 0 -1- 2 -3- 4 (indices); costs all 1.
        neighbors = [[1], [0, 2], [1, 3], [2, 4], [3]]
        costs = [1.0] * 5
        dist = _dijkstra({0: 1.0}, neighbors, costs)
        assert dist == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_multi_source_takes_minimum(self):
        neighbors = [[1], [0, 2], [1]]
        costs = [1.0, 1.0, 1.0]
        dist = _dijkstra({0: 1.0, 2: 0.5}, neighbors, costs)
        assert dist == [1.0, 1.5, 0.5]

    def test_unreachable_infinite(self):
        dist = _dijkstra({0: 1.0}, [[], []], [1.0, 1.0])
        assert dist[1] == float("inf")

    def test_empty_seeds(self):
        assert _dijkstra({}, [[], []], [1.0, 1.0]) == [float("inf")] * 2


class TestGuidedEquivalence:
    def test_same_results_on_line(self):
        graph, keys, _ = build_line_graph(6)
        augmented = augmented_for(graph, [[keys[0]], [keys[5], keys[2]]])
        costs = uniform_costs(graph)
        plain = explore_top_k(augmented, costs, k=5)
        guided = explore_top_k(augmented, costs, k=5, guided=True)
        assert [sg.cost for sg in plain.subgraphs] == [
            sg.cost for sg in guided.subgraphs
        ]

    def test_same_results_with_varied_costs(self):
        graph, keys, edges = build_line_graph(5)
        costs = uniform_costs(graph)
        costs[keys[2]] = 0.3
        costs[edges[1]] = 2.0
        augmented = augmented_for(graph, [[keys[0]], [keys[4]]])
        plain = explore_top_k(augmented, costs, k=3)
        guided = explore_top_k(augmented, costs, k=3, guided=True)
        assert [sg.elements for sg in plain.subgraphs] == [
            sg.elements for sg in guided.subgraphs
        ]

    def test_guided_prunes_more(self):
        # A long dead-end branch the guided run should not chase.
        graph = SummaryGraph()
        keys = [graph.add_class_vertex(URI(f"c:{i}")).key for i in range(10)]
        for i in range(9):
            graph.add_edge(URI(f"e:{i}"), SummaryEdgeKind.RELATION, keys[i], keys[i + 1])
        costs = uniform_costs(graph)
        augmented = augmented_for(graph, [[keys[0]], [keys[2]]])
        plain = explore_top_k(augmented, costs, k=1)
        guided = explore_top_k(augmented, costs, k=1, guided=True)
        assert guided.cursors_popped <= plain.cursors_popped
        assert [sg.cost for sg in guided.subgraphs] == [
            sg.cost for sg in plain.subgraphs
        ]

    def test_guided_engine_matches_plain_engine(self, example_graph):
        from repro.core.engine import KeywordSearchEngine

        plain = KeywordSearchEngine(example_graph, cost_model="c3", k=5)
        guided = KeywordSearchEngine(
            example_graph,
            cost_model="c3",
            k=5,
            guided=True,
            summary=plain.summary,
            keyword_index=plain.keyword_index,
        )
        for query in ("2006 cimiano aifb", "aifb 2006", "publication cimiano"):
            a = plain.search(query)
            b = guided.search(query)
            assert [round(c.cost, 9) for c in a] == [round(c.cost, 9) for c in b]
