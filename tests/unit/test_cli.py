"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.rdf.ntriples import serialize_ntriples


def test_parser_defaults():
    args = build_parser().parse_args(["cimiano 2006"])
    assert args.dataset == "example"
    assert args.k == 5
    assert args.cost_model == "c3"


def test_example_search(capsys):
    assert main(["2006 cimiano aifb"]) == 0
    out = capsys.readouterr().out
    assert "[1]" in out
    assert "Publication" in out


def test_sparql_output(capsys):
    main(["aifb 2006", "--sparql"])
    assert "SELECT" in capsys.readouterr().out


def test_execute(capsys):
    main(["2006 cimiano aifb", "--execute"])
    out = capsys.readouterr().out
    assert "pub1URI" in out or "P. Cimiano" in out or "2006" in out


def test_no_match_exit_code(capsys):
    assert main(["zzzzz qqqqq"]) == 1


def test_custom_data_file(tmp_path, capsys, example_graph):
    path = tmp_path / "data.nt"
    path.write_text(serialize_ntriples(example_graph))
    assert main(["aifb", "--data", str(path)]) == 0


def test_filters_mode(capsys):
    from repro.datasets import DblpConfig, generate_dblp

    # Use the bundled dblp generator at small scale via --dataset dblp.
    assert main(["cimiano before 2005", "--dataset", "dblp", "--scale", "200",
                 "--filters", "--execute"]) == 0
    out = capsys.readouterr().out
    assert "Filter" in out or "FILTER" in out


def test_guided_flag(capsys):
    assert main(["aifb 2006", "--guided"]) == 0


def test_cost_model_flag(capsys):
    assert main(["aifb 2006", "--cost-model", "c1"]) == 0
