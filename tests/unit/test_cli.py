"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.rdf.ntriples import serialize_ntriples


def test_parser_defaults():
    args = build_parser().parse_args(["cimiano 2006"])
    assert args.dataset == "example"
    assert args.k == 5
    assert args.cost_model == "c3"


def test_non_positive_k_rejected_by_parser(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["aifb", "-k", "0"])
    assert "must be >= 1" in capsys.readouterr().err


def test_example_search(capsys):
    assert main(["2006 cimiano aifb"]) == 0
    out = capsys.readouterr().out
    assert "[1]" in out
    assert "Publication" in out


def test_sparql_output(capsys):
    main(["aifb 2006", "--sparql"])
    assert "SELECT" in capsys.readouterr().out


def test_execute(capsys):
    main(["2006 cimiano aifb", "--execute"])
    out = capsys.readouterr().out
    assert "pub1URI" in out or "P. Cimiano" in out or "2006" in out


def test_no_match_exit_code(capsys):
    assert main(["zzzzz qqqqq"]) == 1


def test_custom_data_file(tmp_path, capsys, example_graph):
    path = tmp_path / "data.nt"
    path.write_text(serialize_ntriples(example_graph))
    assert main(["aifb", "--data", str(path)]) == 0


def test_filters_mode(capsys):
    from repro.datasets import DblpConfig, generate_dblp

    # Use the bundled dblp generator at small scale via --dataset dblp.
    assert main(["cimiano before 2005", "--dataset", "dblp", "--scale", "200",
                 "--filters", "--execute"]) == 0
    out = capsys.readouterr().out
    assert "Filter" in out or "FILTER" in out


def test_guided_flag(capsys):
    assert main(["aifb 2006", "--guided"]) == 0


def test_cost_model_flag(capsys):
    assert main(["aifb 2006", "--cost-model", "c1"]) == 0


def test_update_ntriples_applies_delta(tmp_path, capsys, example_graph):
    """Triples added via --update-ntriples are searchable: the base file
    omits every 2006 triple, the delta restores them."""
    base = [t for t in example_graph.triples if "2006" not in t.n3()]
    delta = [t for t in example_graph.triples if "2006" in t.n3()]
    assert delta, "the running example should mention 2006"
    base_path = tmp_path / "base.nt"
    delta_path = tmp_path / "delta.nt"
    base_path.write_text(serialize_ntriples(base))
    delta_path.write_text(serialize_ntriples(delta))

    assert main(["2006", "--data", str(base_path)]) == 1  # unknown keyword
    assert (
        main(["2006", "--data", str(base_path), "--update-ntriples", str(delta_path)])
        == 0
    )
    captured = capsys.readouterr()
    assert "[1]" in captured.out
    assert "+%d triples" % len(delta) in captured.err


def test_remove_ntriples_applies_delta(tmp_path, capsys, example_graph):
    delta = [t for t in example_graph.triples if "2006" in t.n3()]
    full_path = tmp_path / "full.nt"
    delta_path = tmp_path / "delta.nt"
    full_path.write_text(serialize_ntriples(example_graph.triples))
    delta_path.write_text(serialize_ntriples(delta))

    assert (
        main(["2006", "--data", str(full_path), "--remove-ntriples", str(delta_path)])
        == 1
    )


def test_update_ntriples_repeatable(tmp_path, capsys, example_graph):
    triples = list(example_graph.triples)
    cut = len(triples) // 2
    base_path = tmp_path / "base.nt"
    d1, d2 = tmp_path / "d1.nt", tmp_path / "d2.nt"
    base_path.write_text(serialize_ntriples(triples[:cut]))
    d1.write_text(serialize_ntriples(triples[cut : cut + 3]))
    d2.write_text(serialize_ntriples(triples[cut + 3 :]))
    assert (
        main(
            [
                "2006 cimiano aifb",
                "--data", str(base_path),
                "--update-ntriples", str(d1),
                "--update-ntriples", str(d2),
            ]
        )
        == 0
    )


def test_profile_flag_prints_timing_breakdown(capsys):
    assert main(["2006 cimiano aifb", "--profile"]) == 0
    err = capsys.readouterr().err
    assert "# timings:" in err
    for stage in ("keyword_mapping", "augmentation", "exploration", "query_mapping", "total"):
        assert f"{stage}=" in err


def test_profile_flag_with_filters_reports_unsupported(capsys):
    main(["cimiano before 2007", "--dataset", "dblp", "--scale", "200",
          "--filters", "--profile"])
    assert "--profile is not supported with --filters" in capsys.readouterr().err


class TestSubcommands:
    """`repro search|serve|bench`, with the bare positional form kept as
    an alias for `search`."""

    def test_search_subcommand_matches_legacy_alias(self, capsys):
        assert main(["search", "2006 cimiano aifb"]) == 0
        via_subcommand = capsys.readouterr().out
        assert main(["2006 cimiano aifb"]) == 0
        assert capsys.readouterr().out == via_subcommand

    def test_search_subcommand_flags(self, capsys):
        assert main(["search", "aifb 2006", "--sparql"]) == 0
        assert "SELECT" in capsys.readouterr().out

    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.port == 8080
        assert args.workers == 4
        assert args.max_pending == 64
        assert args.cache == 256

    def test_bench_subcommand_runs(self, capsys):
        assert main(["bench", "--dataset", "example", "--clients", "2",
                     "--requests", "2"]) == 0
        out = capsys.readouterr().out
        assert "clients=1" in out
        assert "clients=2" in out
        assert "qps=" in out

    def test_bench_parser_rejects_bad_clients(self, capsys):
        from repro.cli import build_bench_parser

        with pytest.raises(SystemExit):
            build_bench_parser().parse_args(["--clients", "0"])
        assert "must be >= 1" in capsys.readouterr().err
