"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.rdf.ntriples import serialize_ntriples


def test_parser_defaults():
    from repro.cli import _resolve_engine_args

    args = build_parser().parse_args(["cimiano 2006"])
    assert args.dataset == "example"
    # Engine flags parse as None (so --bundle can tell "unspecified" from
    # "explicitly passed") and resolve to the stock defaults otherwise.
    assert args.k is None and args.cost_model is None
    _resolve_engine_args(args)
    assert args.k == 5
    assert args.cost_model == "c3"


def test_non_positive_k_rejected_by_parser(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["aifb", "-k", "0"])
    assert "must be >= 1" in capsys.readouterr().err


def test_example_search(capsys):
    assert main(["2006 cimiano aifb"]) == 0
    out = capsys.readouterr().out
    assert "[1]" in out
    assert "Publication" in out


def test_sparql_output(capsys):
    main(["aifb 2006", "--sparql"])
    assert "SELECT" in capsys.readouterr().out


def test_execute(capsys):
    main(["2006 cimiano aifb", "--execute"])
    out = capsys.readouterr().out
    assert "pub1URI" in out or "P. Cimiano" in out or "2006" in out


def test_no_match_exit_code(capsys):
    assert main(["zzzzz qqqqq"]) == 1


def test_custom_data_file(tmp_path, capsys, example_graph):
    path = tmp_path / "data.nt"
    path.write_text(serialize_ntriples(example_graph))
    assert main(["aifb", "--data", str(path)]) == 0


def test_filters_mode(capsys):
    from repro.datasets import DblpConfig, generate_dblp

    # Use the bundled dblp generator at small scale via --dataset dblp.
    assert main(["cimiano before 2005", "--dataset", "dblp", "--scale", "200",
                 "--filters", "--execute"]) == 0
    out = capsys.readouterr().out
    assert "Filter" in out or "FILTER" in out


def test_guided_flag(capsys):
    assert main(["aifb 2006", "--guided"]) == 0


def test_cost_model_flag(capsys):
    assert main(["aifb 2006", "--cost-model", "c1"]) == 0


def test_update_ntriples_applies_delta(tmp_path, capsys, example_graph):
    """Triples added via --update-ntriples are searchable: the base file
    omits every 2006 triple, the delta restores them."""
    base = [t for t in example_graph.triples if "2006" not in t.n3()]
    delta = [t for t in example_graph.triples if "2006" in t.n3()]
    assert delta, "the running example should mention 2006"
    base_path = tmp_path / "base.nt"
    delta_path = tmp_path / "delta.nt"
    base_path.write_text(serialize_ntriples(base))
    delta_path.write_text(serialize_ntriples(delta))

    assert main(["2006", "--data", str(base_path)]) == 1  # unknown keyword
    assert (
        main(["2006", "--data", str(base_path), "--update-ntriples", str(delta_path)])
        == 0
    )
    captured = capsys.readouterr()
    assert "[1]" in captured.out
    assert "+%d triples" % len(delta) in captured.err


def test_remove_ntriples_applies_delta(tmp_path, capsys, example_graph):
    delta = [t for t in example_graph.triples if "2006" in t.n3()]
    full_path = tmp_path / "full.nt"
    delta_path = tmp_path / "delta.nt"
    full_path.write_text(serialize_ntriples(example_graph.triples))
    delta_path.write_text(serialize_ntriples(delta))

    assert (
        main(["2006", "--data", str(full_path), "--remove-ntriples", str(delta_path)])
        == 1
    )


def test_update_ntriples_repeatable(tmp_path, capsys, example_graph):
    triples = list(example_graph.triples)
    cut = len(triples) // 2
    base_path = tmp_path / "base.nt"
    d1, d2 = tmp_path / "d1.nt", tmp_path / "d2.nt"
    base_path.write_text(serialize_ntriples(triples[:cut]))
    d1.write_text(serialize_ntriples(triples[cut : cut + 3]))
    d2.write_text(serialize_ntriples(triples[cut + 3 :]))
    assert (
        main(
            [
                "2006 cimiano aifb",
                "--data", str(base_path),
                "--update-ntriples", str(d1),
                "--update-ntriples", str(d2),
            ]
        )
        == 0
    )


def test_profile_flag_prints_timing_breakdown(capsys):
    assert main(["2006 cimiano aifb", "--profile"]) == 0
    err = capsys.readouterr().err
    assert "# timings:" in err
    for stage in ("keyword_mapping", "augmentation", "exploration", "query_mapping", "total"):
        assert f"{stage}=" in err


def test_profile_flag_with_filters_reports_unsupported(capsys):
    main(["cimiano before 2007", "--dataset", "dblp", "--scale", "200",
          "--filters", "--profile"])
    assert "--profile is not supported with --filters" in capsys.readouterr().err


class TestSubcommands:
    """`repro search|serve|bench`, with the bare positional form kept as
    an alias for `search`."""

    def test_search_subcommand_matches_legacy_alias(self, capsys):
        assert main(["search", "2006 cimiano aifb"]) == 0
        via_subcommand = capsys.readouterr().out
        assert main(["2006 cimiano aifb"]) == 0
        assert capsys.readouterr().out == via_subcommand

    def test_search_subcommand_flags(self, capsys):
        assert main(["search", "aifb 2006", "--sparql"]) == 0
        assert "SELECT" in capsys.readouterr().out

    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.port == 8080
        assert args.workers == 0  # worker *processes*; 0 = in-process tier
        assert args.threads == 4
        assert args.max_pending == 64
        assert args.max_queue_wait is None
        assert args.cache == 256

    def test_bench_subcommand_runs(self, capsys):
        assert main(["bench", "--dataset", "example", "--clients", "1,2",
                     "--requests", "2"]) == 0
        out = capsys.readouterr().out
        assert "clients=1" in out
        assert "clients=2" in out
        assert "workers=0" in out
        assert "qps=" in out

    def test_bench_parser_rejects_bad_clients(self, capsys):
        from repro.cli import build_bench_parser

        with pytest.raises(SystemExit):
            build_bench_parser().parse_args(["--clients", "0"])
        assert "must be >= 1" in capsys.readouterr().err


class TestPersistenceCommands:
    """`repro build` / `repro compact` / `--bundle` / `--version`."""

    def test_version_flag(self, capsys):
        from repro import __version__

        assert main(["--version"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == f"repro {__version__}"
        assert lines[1].startswith("kernels: ")
        assert main(["-V"]) == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_build_parser_requires_output(self, capsys):
        from repro.cli import build_build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_build_parser().parse_args(["--dataset", "example"])
        assert excinfo.value.code == 2
        assert "--output" in capsys.readouterr().err

    def test_build_parser_defaults(self):
        from repro.cli import build_build_parser

        from repro.cli import _resolve_engine_args

        args = build_build_parser().parse_args(["-o", "x.reprobundle"])
        assert args.output == "x.reprobundle"
        assert args.force is False
        assert args.dataset == "example"
        assert args.cost_model is None  # resolved to stock defaults at build
        _resolve_engine_args(args)
        assert args.cost_model == "c3"

    def test_compact_parser_requires_bundle(self, capsys):
        from repro.cli import build_compact_parser

        with pytest.raises(SystemExit) as excinfo:
            build_compact_parser().parse_args([])
        assert excinfo.value.code == 2
        assert "bundle" in capsys.readouterr().err

    def test_build_and_search_bundle(self, tmp_path, capsys):
        bundle = str(tmp_path / "example.reprobundle")
        assert main(["build", "--dataset", "example", "-o", bundle]) == 0
        assert "# wrote" in capsys.readouterr().err
        assert main(["search", "2006 cimiano aifb", "--bundle", bundle]) == 0
        captured = capsys.readouterr()
        assert "[1]" in captured.out
        assert "# bundle:" in captured.err

    def test_build_stream_and_search_bundle(self, tmp_path, capsys):
        bundle = str(tmp_path / "example.reprobundle")
        assert main(["build", "--dataset", "example", "--stream", "-o", bundle]) == 0
        err = capsys.readouterr().err
        assert "# wrote" in err and "streamed" in err
        assert main(["search", "2006 cimiano aifb", "--bundle", bundle]) == 0
        assert "[1]" in capsys.readouterr().out

    def test_build_stream_matches_in_memory_build(self, tmp_path, capsys):
        from repro.core.engine import KeywordSearchEngine

        streamed = str(tmp_path / "streamed.reprobundle")
        saved = str(tmp_path / "saved.reprobundle")
        assert main(["build", "--dataset", "example", "--stream", "-o", streamed]) == 0
        assert main(["build", "--dataset", "example", "-o", saved]) == 0
        capsys.readouterr()
        a = KeywordSearchEngine.load(streamed, attach_wal=False)
        b = KeywordSearchEngine.load(saved, attach_wal=False)
        assert a.summary.snapshot_key == b.summary.snapshot_key
        assert a.keyword_index.snapshot_key == b.keyword_index.snapshot_key
        # The CLI's resolved engine defaults apply on both paths.
        assert (a.k, a.dmax, a.cost_model.name) == (b.k, b.dmax, b.cost_model.name)

    def test_build_stream_from_data_file(self, tmp_path, capsys, example_graph):
        data = tmp_path / "example.nt"
        data.write_text(serialize_ntriples(example_graph.triples))
        bundle = str(tmp_path / "data.reprobundle")
        assert (
            main(
                [
                    "build",
                    "--data",
                    str(data),
                    "--stream",
                    "--progress-every",
                    "10",
                    "-o",
                    bundle,
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "# wrote" in err
        assert "# build --stream:" in err  # progress lines reached stderr
        assert main(["search", "2006 cimiano aifb", "--bundle", bundle]) == 0

    def test_build_stream_refuses_overwrite_without_force(self, tmp_path, capsys):
        bundle = str(tmp_path / "example.reprobundle")
        assert main(["build", "--dataset", "example", "--stream", "-o", bundle]) == 0
        capsys.readouterr()
        assert main(["build", "--dataset", "example", "--stream", "-o", bundle]) == 1
        assert "refusing to overwrite" in capsys.readouterr().err

    def test_build_refuses_overwrite_without_force(self, tmp_path, capsys):
        bundle = str(tmp_path / "example.reprobundle")
        assert main(["build", "--dataset", "example", "-o", bundle]) == 0
        capsys.readouterr()
        assert main(["build", "--dataset", "example", "-o", bundle]) == 1
        assert "refusing to overwrite" in capsys.readouterr().err
        assert main(["build", "--dataset", "example", "-o", bundle, "--force"]) == 0

    def test_compact_missing_bundle_exit_code(self, capsys):
        assert main(["compact", "does-not-exist.reprobundle"]) == 1
        assert "repro compact:" in capsys.readouterr().err

    def test_compact_after_updates(self, tmp_path, capsys, example_graph):
        from repro.rdf.ntriples import serialize_ntriples
        from repro.core.engine import KeywordSearchEngine

        bundle = str(tmp_path / "example.reprobundle")
        assert main(["build", "--dataset", "example", "-o", bundle]) == 0
        engine = KeywordSearchEngine.load(bundle)
        extra = tmp_path / "extra.nt"
        extra.write_text('<ex:n> <http://purl.org/dc/elements/1.1/title> "Novel" .\n')
        from repro.rdf.ntriples import parse_ntriples

        engine.add_triples(list(parse_ntriples(extra.read_text())))
        engine.delta_log.close()  # release the single-writer lock
        capsys.readouterr()
        assert main(["compact", bundle]) == 0
        err = capsys.readouterr().err
        assert "folded 1 WAL epochs" in err

    def test_bundle_preserves_saved_engine_config(self, tmp_path, capsys):
        from repro.cli import _build_engine, build_parser

        bundle = str(tmp_path / "pg.reprobundle")
        assert main(["build", "--dataset", "example", "--cost-model", "pagerank",
                     "-k", "7", "-o", bundle]) == 0
        capsys.readouterr()
        # Unspecified flags keep the bundle's config...
        engine = _build_engine(build_parser().parse_args(["q", "--bundle", bundle]))
        assert engine.cost_model.name == "pagerank"
        assert engine.k == 7
        # ...read-only commands never take the single-writer lock...
        assert engine.delta_log is None
        # ...while explicitly passed flags win.
        args = build_parser().parse_args(["q", "--bundle", bundle, "--cost-model", "c1"])
        engine = _build_engine(args)
        assert engine.cost_model.name == "c1"
        assert engine.k == 7
        assert args.k == 7  # post-load resolution for downstream readers

    def test_bundle_guided_is_overridable_both_ways(self, tmp_path, capsys):
        from repro.cli import _build_engine, build_parser

        bundle = str(tmp_path / "g.reprobundle")
        assert main(["build", "--dataset", "example", "--guided", "-o", bundle]) == 0
        capsys.readouterr()
        assert _build_engine(build_parser().parse_args(["q", "--bundle", bundle])).guided is True
        args = build_parser().parse_args(["q", "--bundle", bundle, "--no-guided"])
        assert _build_engine(args).guided is False

    def test_readonly_search_coexists_with_attached_writer(self, tmp_path, capsys):
        from repro.core.engine import KeywordSearchEngine

        bundle = str(tmp_path / "rw.reprobundle")
        assert main(["build", "--dataset", "example", "-o", bundle]) == 0
        writer = KeywordSearchEngine.load(bundle)  # holds the WAL lock
        capsys.readouterr()
        assert main(["search", "2006 cimiano aifb", "--bundle", bundle]) == 0
        writer.delta_log.close()

    def test_search_with_updates_attaches_wal(self, tmp_path, capsys):
        bundle = str(tmp_path / "upd.reprobundle")
        assert main(["build", "--dataset", "example", "-o", bundle]) == 0
        delta = tmp_path / "delta.nt"
        delta.write_text('<ex:n> <http://purl.org/dc/elements/1.1/title> "Novel" .\n')
        assert main(["search", "novel", "--bundle", bundle,
                     "--update-ntriples", str(delta)]) == 0
        assert os.path.getsize(f"{bundle}.wal") > 20  # epoch durably logged
        capsys.readouterr()
        # A restart replays the logged epoch.
        assert main(["search", "novel", "--bundle", bundle]) == 0
        assert "+1 WAL epochs" in capsys.readouterr().err

    def test_search_bundle_with_corrupt_file_exits_with_message(self, tmp_path):
        bad = tmp_path / "bad.reprobundle"
        bad.write_bytes(b"garbage data that is not a bundle")
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "aifb", "--bundle", str(bad)])
        assert "not a repro bundle" in str(excinfo.value)

    def test_search_bundle_missing_file_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "aifb", "--bundle", str(tmp_path / "nope.reprobundle")])
        assert "--bundle" in str(excinfo.value)


class TestBundleConflicts:
    def test_bundle_conflicts_with_data_sources(self, tmp_path, capsys):
        bundle = str(tmp_path / "c.reprobundle")
        assert main(["build", "--dataset", "example", "-o", bundle]) == 0
        for extra in (["--data", "x.nt"], ["--dataset", "dblp"], ["--scale", "99"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["search", "q", "--bundle", bundle, *extra])
            assert "conflicts" in str(excinfo.value)


def test_bench_bundle_derives_queries_from_loaded_data(tmp_path, capsys):
    """`bench --bundle` must sample its workload from the bundle's own
    data, not the example-dataset defaults (which would benchmark
    no-match short-circuits)."""
    from repro.cli import _bench_queries, build_bench_parser
    from repro.core.engine import KeywordSearchEngine

    bundle = str(tmp_path / "b.reprobundle")
    assert main(["build", "--dataset", "example", "-o", bundle]) == 0
    args = build_bench_parser().parse_args(["--bundle", bundle])
    engine = KeywordSearchEngine.load(bundle, attach_wal=False)
    queries = _bench_queries(args, engine)
    assert queries  # derived from the engine's own labels
    # Every derived query must actually hit the pipeline on this data.
    assert any(engine.keyword_index.lookup(word)
               for q in queries for word in q.split())
