"""Unit tests for RDF terms."""

import pytest

from repro.rdf.terms import BNode, Literal, Term, URI, Variable
from repro.rdf.namespace import XSD


class TestURI:
    def test_value_round_trip(self):
        assert URI("http://example.org/a").value == "http://example.org/a"

    def test_equality_is_structural(self):
        assert URI("a:x") == URI("a:x")
        assert URI("a:x") != URI("a:y")

    def test_hash_consistent_with_equality(self):
        assert hash(URI("a:x")) == hash(URI("a:x"))
        assert len({URI("a:x"), URI("a:x"), URI("a:y")}) == 2

    def test_not_equal_to_other_term_kinds(self):
        assert URI("x") != Literal("x")
        assert URI("x") != BNode("x")

    def test_n3(self):
        assert URI("http://e/x").n3() == "<http://e/x>"

    def test_immutable(self):
        uri = URI("a:x")
        with pytest.raises(AttributeError):
            uri.value = "other"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            URI("")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            URI(42)

    def test_kind_predicates(self):
        uri = URI("a:x")
        assert uri.is_uri
        assert not uri.is_literal
        assert not uri.is_bnode
        assert not uri.is_variable


class TestLiteral:
    def test_lexical(self):
        assert Literal("2006").lexical == "2006"

    def test_non_string_coerced(self):
        assert Literal(2006).lexical == "2006"

    def test_equality_includes_datatype(self):
        assert Literal("1") != Literal("1", datatype=XSD.integer)
        assert Literal("1", datatype=XSD.integer) == Literal("1", datatype=XSD.integer)

    def test_equality_includes_language(self):
        assert Literal("chat", language="fr") != Literal("chat")
        assert Literal("chat", language="fr") == Literal("chat", language="fr")

    def test_datatype_and_language_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, language="en")

    def test_n3_plain(self):
        assert Literal("abc").n3() == '"abc"'

    def test_n3_escapes(self):
        assert Literal('a"b\\c\nd').n3() == '"a\\"b\\\\c\\nd"'

    def test_n3_language(self):
        assert Literal("chat", language="fr").n3() == '"chat"@fr'

    def test_n3_datatype(self):
        rendered = Literal("1", datatype=XSD.integer).n3()
        assert rendered.startswith('"1"^^<')

    def test_as_python_integer(self):
        assert Literal("42", datatype=XSD.integer).as_python() == 42

    def test_as_python_float(self):
        assert Literal("1.5", datatype=XSD.double).as_python() == 1.5

    def test_as_python_boolean(self):
        assert Literal("true", datatype=XSD.boolean).as_python() is True
        assert Literal("false", datatype=XSD.boolean).as_python() is False

    def test_as_python_plain_is_string(self):
        assert Literal("plain").as_python() == "plain"

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"


class TestBNode:
    def test_explicit_label(self):
        assert BNode("n1") == BNode("n1")

    def test_fresh_labels_unique(self):
        assert BNode() != BNode()

    def test_n3(self):
        assert BNode("n1").n3() == "_:n1"


class TestVariable:
    def test_name(self):
        assert Variable("x").name == "x"

    def test_question_mark_stripped(self):
        assert Variable("?x") == Variable("x")

    def test_n3(self):
        assert Variable("x").n3() == "?x"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_is_variable(self):
        assert Variable("x").is_variable
        assert not Variable("x").is_uri
