"""Supervision tests for the multiprocess dispatch tier.

The claims under test: a worker that dies mid-request is retired, its
request is retried on a healthy worker, a replacement is respawned, and
`stats()` counts the restart; queue wait is bounded separately from
execution; per-worker facts are merged into the dispatcher's stats.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.service import AdmissionError, DispatchService


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    from repro.datasets.example import running_example_graph

    path = str(tmp_path_factory.mktemp("dispatch") / "ex.reprobundle")
    KeywordSearchEngine(running_example_graph()).save(path)
    return path


@pytest.fixture()
def service(bundle):
    svc = DispatchService(bundle, workers=2)
    yield svc
    svc.close()


def _wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


def _live_workers(stats):
    return [w for w in stats["workers"] if w.get("alive")]


def _recovered_stats(service, restarts=1, live=2):
    """The service's stats once a restart registered and the pool healed,
    else None (poll predicate for `_wait_for`)."""
    stats = service.stats()
    if stats["dispatch"]["restarts"] >= restarts and len(
        _live_workers(stats)
    ) == live:
        return stats
    return None


class TestCrashRecovery:
    def test_kill_idle_worker_respawned_and_counted(self, service):
        pids = {w["pid"] for w in _live_workers(service.stats())}
        assert len(pids) == 2
        victim = next(iter(pids))
        os.kill(victim, signal.SIGKILL)

        stats = _wait_for(lambda: _recovered_stats(service))
        assert stats, "dead worker never replaced"
        live_pids = {w["pid"] for w in _live_workers(stats)}
        assert victim not in live_pids
        assert len(live_pids) == 2
        # The pool serves straight through the recovery.
        assert service.search("cimiano 2006")["candidates"]

    def test_kill_mid_request_retried_on_healthy_worker(self, service):
        outcome = {}

        def call():
            # `sleep` occupies a worker's pipe exactly like a long search
            # (and is idempotent, like every dispatched op).
            outcome["response"] = service._roundtrip(
                {"op": "sleep", "seconds": 1.0}
            )

        thread = threading.Thread(target=call, daemon=True)
        thread.start()

        def find_busy():
            with service._cond:
                return next(
                    (h for h in service._handles if h.busy), None
                )

        busy = _wait_for(find_busy, timeout=5.0)
        assert busy is not None, "sleep request never reached a worker"
        os.kill(busy.pid, signal.SIGKILL)

        thread.join(timeout=20)
        assert not thread.is_alive(), "retry never completed"
        response = outcome["response"]
        assert response["ok"]
        # The answer came from a *different* (healthy) worker.
        assert response["pid"] != busy.pid

        stats = _wait_for(lambda: _recovered_stats(service))
        assert stats, "killed worker never respawned"
        assert stats["queries"]["retries"] >= 1

    def test_respawned_worker_joins_at_the_watermark(self, bundle):
        from repro.rdf.namespace import LABEL_PREDICATES
        from repro.rdf.terms import Literal, URI
        from repro.rdf.triples import Triple

        label = next(iter(LABEL_PREDICATES))
        svc = DispatchService(bundle, workers=2)
        try:
            out = svc.update(
                adds=[
                    Triple(
                        URI("http://example.org/sup/a"),
                        label,
                        Literal("zzrespawn cimiano"),
                    )
                ]
            )
            assert out["workers_synced"] == 2
            victim = _live_workers(svc.stats())[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            stats = _wait_for(lambda: _recovered_stats(svc))
            assert stats
            # The replacement replayed the WAL during load: it reports
            # the committed epoch without ever serving a request.
            assert all(
                w["epoch"] == out["epoch"] for w in _live_workers(stats)
            )
            assert svc.search("zzrespawn")["candidates"]
        finally:
            svc.close()


class TestQueueWait:
    def test_bounded_wait_rejects_instead_of_stacking(self, bundle):
        svc = DispatchService(bundle, workers=1, max_queue_wait=0.05)
        try:
            hold = threading.Thread(
                target=lambda: svc._roundtrip({"op": "sleep", "seconds": 1.0}),
                daemon=True,
            )
            hold.start()
            _wait_for(
                lambda: any(h.busy for h in svc._handles), timeout=5.0
            )
            with pytest.raises(AdmissionError):
                svc.search("cimiano 2006")
            hold.join(timeout=10)
            queries = svc.stats()["queries"]
            assert queries["rejected"] >= 1
            # The held request still completed; the shed one never ran.
            assert queries["completed"] >= 1
        finally:
            svc.close()


class TestStatsMerging:
    def test_per_worker_facts_and_dispatch_counters(self, service):
        service.search("cimiano 2006")
        stats = service.stats()
        assert stats["service"]["mode"] == "dispatch"
        assert stats["service"]["live_workers"] == 2
        # The module bundle may carry WAL epochs from earlier tests; what
        # matters is that every worker serves at the writer's epoch.
        watermark = stats["dispatch"]["watermark"]
        assert watermark == service.engine.index_manager.epoch
        workers = _live_workers(stats)
        assert len(workers) == 2
        for worker in workers:
            assert worker["pid"] > 0
            assert worker["epoch"] == watermark
            assert worker["vmrss_kb"] > 0  # /proc-backed RSS per worker
            assert "caches" in worker
        queries = stats["queries"]
        for key in ("queue_wait_p50_ms", "queue_wait_p99_ms", "queue_wait_max_ms"):
            assert queries[key] >= 0
        assert stats["dispatch"]["restarts"] == 0
        assert sum(w["completed"] for w in workers) >= 1
