"""Unit tests for the single-table SQL rendering (Fig. 1c)."""

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.sql import to_sql, to_table_patterns
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, Variable
from repro.store.single_table import SingleTableStore
from repro.rdf.triples import Triple

EX = Namespace("http://t/")
x, y = Variable("x"), Variable("y")


def test_one_alias_per_atom():
    q = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, Literal("v"))])
    sql = to_sql(q)
    assert "Ex AS A" in sql
    assert "Ex AS B" in sql
    assert "Ex AS C" not in sql


def test_predicate_conditions():
    q = ConjunctiveQuery([Atom(EX.p, x, Literal("v"))])
    sql = to_sql(q)
    assert "A.p = 'http://t/p'" in sql
    assert "A.o = 'v'" in sql


def test_shared_variable_generates_join_condition():
    q = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, Literal("v"))])
    sql = to_sql(q)
    assert "B.s = A.o" in sql


def test_quotes_escaped():
    q = ConjunctiveQuery([Atom(EX.p, x, Literal("O'Hara"))])
    assert "O''Hara" in to_sql(q)


def test_select_lists_distinguished_columns():
    q = ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[y])
    sql = to_sql(q)
    assert sql.startswith("SELECT A.o")


def test_custom_table_name():
    q = ConjunctiveQuery([Atom(EX.p, x, y)])
    assert "triples AS A" in to_sql(q, table="triples")


def test_many_aliases_roll_over_alphabet():
    atoms = [Atom(EX[f"p{i}"], x, Variable(f"v{i}")) for i in range(30)]
    sql = to_sql(ConjunctiveQuery(atoms))
    assert "AS A1" in sql  # 27th alias


def test_table_patterns_match_sql_semantics():
    q = ConjunctiveQuery(
        [Atom(EX.p, x, y), Atom(EX.name, y, Literal("n"))], distinguished=[x]
    )
    patterns, projection = to_table_patterns(q)
    store = SingleTableStore(
        [
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.b, EX.name, Literal("n")),
            Triple(EX.c, EX.p, EX.d),
        ]
    )
    results = store.evaluate_self_join(patterns, projection)
    assert results == [(EX.a,)]
