"""Unit tests for the BANKS backward-search baseline."""

import pytest

from repro.baselines.backward import BackwardSearch
from repro.baselines.graph_adapter import EntityGraphView
from repro.datasets.example import EX


@pytest.fixture(scope="module")
def view(example_graph):
    return EntityGraphView(example_graph)


def test_finds_answer_root(view):
    result = BackwardSearch(view).search(["cimiano", "aifb"], k=5)
    assert result.trees
    # pub1 reaches both re2 (author) and inst1 (via re2) — but the natural
    # root connecting 'P. Cimiano' and 'AIFB' backward is re2 itself? No:
    # backward search goes against edge direction, so roots must REACH the
    # keyword nodes along forward edges.  re2 --worksAt--> inst1 and re2 is
    # the cimiano node itself.
    roots = {view.term_of(t.root) for t in result.trees}
    assert EX.re2URI in roots


def test_tree_paths_start_at_root_and_end_at_keyword(view):
    result = BackwardSearch(view).search(["cimiano", "aifb"], k=3)
    cimiano_nodes = view.keyword_nodes("cimiano")
    aifb_nodes = view.keyword_nodes("aifb")
    for tree in result.trees:
        assert tree.paths[0][0] == tree.root
        assert tree.paths[0][-1] in cimiano_nodes
        assert tree.paths[1][-1] in aifb_nodes


def test_cost_is_total_path_length(view):
    result = BackwardSearch(view).search(["cimiano", "aifb"], k=1)
    tree = result.trees[0]
    assert tree.cost == sum(len(p) - 1 for p in tree.paths)


def test_k_limits_results(view):
    result = BackwardSearch(view).search(["publication"], k=1)
    assert len(result.trees) == 1
    assert result.terminated_by == "k-found"


def test_no_keywords(view):
    result = BackwardSearch(view).search(["zzznothing"], k=3)
    assert result.trees == []
    assert result.terminated_by == "no-keywords"


def test_max_distance_bounds_search(view):
    near = BackwardSearch(view, max_distance=0).search(["cimiano", "aifb"], k=5)
    assert near.trees == []  # distinct nodes can't meet at distance 0


def test_trees_sorted_by_cost(view):
    result = BackwardSearch(view).search(["2006", "cimiano"], k=5)
    costs = [t.cost for t in result.trees]
    assert costs == sorted(costs)


def test_stats_counted(view):
    result = BackwardSearch(view).search(["cimiano", "aifb"], k=3)
    assert result.nodes_visited > 0
    assert result.edges_traversed > 0
