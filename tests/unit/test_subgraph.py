"""Unit tests for matching subgraphs."""

import pytest

from repro.core.cursor import Cursor
from repro.core.subgraph import MatchingSubgraph


def test_from_cursors_merges_paths():
    c1 = Cursor.origin_cursor("k1", 0, 1.0).expand("e1", 1.0).expand("n", 1.0)
    c2 = Cursor.origin_cursor("k2", 1, 1.0).expand("e2", 1.0).expand("n", 1.0)
    sg = MatchingSubgraph.from_cursors("n", [c1, c2])
    assert sg.connecting_element == "n"
    assert sg.elements == frozenset({"k1", "e1", "k2", "e2", "n"})


def test_cost_is_sum_of_path_costs():
    # Shared elements count once per path (Section V).
    c1 = Cursor.origin_cursor("k1", 0, 1.0).expand("n", 2.0)
    c2 = Cursor.origin_cursor("k2", 1, 0.5).expand("n", 2.0)
    sg = MatchingSubgraph.from_cursors("n", [c1, c2])
    assert sg.cost == pytest.approx(3.0 + 2.5)


def test_requires_paths():
    with pytest.raises(ValueError):
        MatchingSubgraph("n", [], 0.0)


def test_canonical_key_is_element_set():
    sg1 = MatchingSubgraph("n", [["a", "n"], ["b", "n"]], 4.0)
    sg2 = MatchingSubgraph("b", [["n", "a"], ["b"]], 9.0)
    assert sg1.canonical_key == sg2.canonical_key


def test_keyword_origins():
    sg = MatchingSubgraph("n", [["k1", "n"], ["k2", "e", "n"]], 5.0)
    assert sg.keyword_origins == ("k1", "k2")


def test_translated():
    sg = MatchingSubgraph(1, [[0, 1], [2, 1]], 3.0)
    decoded = sg.translated(lambda i: f"el{i}")
    assert decoded.connecting_element == "el1"
    assert decoded.elements == frozenset({"el0", "el1", "el2"})
    assert decoded.cost == sg.cost
    assert decoded.paths == (("el0", "el1"), ("el2", "el1"))


def test_edge_and_vertex_keys():
    edge_key = ("edge", "label", ("class", "A"), ("class", "B"))
    sg = MatchingSubgraph(
        ("class", "A"), [[("class", "A"), edge_key, ("class", "B")]], 3.0
    )
    assert sg.edge_keys() == [edge_key]
    assert set(sg.vertex_keys()) == {("class", "A"), ("class", "B")}


def test_single_element_subgraph():
    sg = MatchingSubgraph("n", [["n"]], 1.0)
    assert sg.elements == frozenset({"n"})
    assert len(sg) == 1


def test_immutable():
    sg = MatchingSubgraph("n", [["n"]], 1.0)
    with pytest.raises(AttributeError):
        sg.cost = 0.0
