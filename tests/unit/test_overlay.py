"""Unit tests for the zero-copy overlay view of the summary graph."""

import pytest

from repro.datasets.example import EX
from repro.rdf.terms import Literal
from repro.summary.elements import (
    THING_KEY,
    SummaryEdgeKind,
    SummaryVertexKind,
)
from repro.summary.overlay import OverlaySummaryGraph
from repro.summary.summary_graph import SummaryGraph


@pytest.fixture()
def base(example_graph):
    return SummaryGraph.from_data_graph(example_graph)


@pytest.fixture()
def overlay(base):
    return OverlaySummaryGraph(base)


class TestZeroCopy:
    def test_base_is_never_mutated(self, base, overlay):
        size_before = len(base)
        version_before = base.version
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        overlay.add_edge(
            EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Institute), vertex.key
        )
        overlay.add_artificial_value_vertex(EX.name)
        assert len(base) == size_before
        assert base.version == version_before
        assert not base.has_element(vertex.key)

    def test_overlay_allocations_track_matches_only(self, base, overlay):
        overlay.add_value_vertex(Literal("AIFB"))
        assert len(overlay.added_vertices) == 1
        assert len(overlay.added_edges) == 0
        assert len(overlay) == len(base) + 1

    def test_concurrent_overlays_are_independent(self, base):
        first = OverlaySummaryGraph(base)
        second = OverlaySummaryGraph(base)
        first.add_value_vertex(Literal("only-first"))
        assert not second.has_element(("value", Literal("only-first")))


class TestElementAccess:
    def test_base_elements_visible(self, base, overlay):
        key = ("class", EX.Publication)
        assert overlay.has_element(key)
        assert overlay.vertex(key) is base.vertex(key)
        assert set(overlay.vertices) >= set(base.vertices)
        assert set(overlay.edges) == set(base.edges)

    def test_added_vertex_and_edge_lookup(self, overlay):
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        edge = overlay.add_edge(
            EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Institute), vertex.key
        )
        assert overlay.vertex(vertex.key) is vertex
        assert overlay.edge(edge.key) is edge
        assert overlay.element(edge.key) is edge
        assert overlay.element(vertex.key) is vertex

    def test_unknown_endpoint_raises(self, overlay):
        with pytest.raises(KeyError):
            overlay.add_edge(
                EX.name,
                SummaryEdgeKind.ATTRIBUTE,
                ("class", EX.DoesNotExist),
                ("class", EX.Institute),
            )

    def test_add_edge_idempotent(self, overlay):
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        e1 = overlay.add_edge(
            EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Institute), vertex.key
        )
        e2 = overlay.add_edge(
            EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Institute), vertex.key
        )
        assert e1 is e2
        assert len(overlay.added_edges) == 1


class TestNeighborhood:
    def test_incident_edges_merge_base_and_overlay(self, base, overlay):
        class_key = ("class", EX.Institute)
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        edge = overlay.add_edge(
            EX.name, SummaryEdgeKind.ATTRIBUTE, class_key, vertex.key
        )
        merged = overlay.incident_edges(class_key)
        assert set(base.incident_edges(class_key)) < set(merged)
        assert edge.key in merged
        assert overlay.degree(class_key) == base.degree(class_key) + 1

    def test_neighbors_of_added_edge_are_endpoints(self, overlay):
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        edge = overlay.add_edge(
            EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Institute), vertex.key
        )
        assert set(overlay.neighbors(edge.key)) == {("class", EX.Institute), vertex.key}

    def test_neighbors_of_base_vertex_include_overlay_edges(self, base, overlay):
        class_key = ("class", EX.Institute)
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        edge = overlay.add_edge(EX.name, SummaryEdgeKind.ATTRIBUTE, class_key, vertex.key)
        assert edge.key in overlay.neighbors(class_key)
        assert set(base.neighbors(class_key)) <= set(overlay.neighbors(class_key))

    def test_edges_with_label_merges(self, base, overlay):
        vertex = overlay.add_value_vertex(Literal("AIFB"))
        overlay.add_edge(EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Institute), vertex.key)
        labels = overlay.edges_with_label(EX.name)
        assert len(labels) == len(base.edges_with_label(EX.name)) + 1


class TestThing:
    def test_reuses_base_thing(self, base, overlay):
        if not base.has_element(THING_KEY):
            pytest.skip("running example has no untyped entities")
        assert overlay.ensure_thing() is base.vertex(THING_KEY)

    def test_materializes_thing_in_overlay_when_base_lacks_it(self):
        base = SummaryGraph()
        overlay = OverlaySummaryGraph(base)
        thing = overlay.ensure_thing()
        assert thing.kind is SummaryVertexKind.THING
        assert overlay.has_element(THING_KEY)
        assert not base.has_element(THING_KEY)


class TestStats:
    def test_stats_account_for_overlay(self, base, overlay):
        overlay.add_value_vertex(Literal("AIFB"))
        assert overlay.stats()["vertices"] == base.stats()["vertices"] + 1
        assert overlay.stats()["edges"] == base.stats()["edges"]

    def test_totals_pass_through(self, base, overlay):
        assert overlay.total_entities == base.total_entities
        assert overlay.total_relation_edges == base.total_relation_edges
        assert overlay.total_attribute_edges == base.total_attribute_edges
