"""Unit tests for the offline synonym lexicon."""

from repro.keyword.stemmer import porter_stem
from repro.keyword.synonyms import (
    DEFAULT_LEXICON,
    HYPERNYM_FACTOR,
    SYNONYM_FACTOR,
    SynonymLexicon,
)


def test_synonyms_symmetric():
    lex = SynonymLexicon()
    lex.add_synonyms("car", "automobile")
    assert dict(lex.related(porter_stem("car")))[porter_stem("automobile")] == SYNONYM_FACTOR
    assert dict(lex.related(porter_stem("automobile")))[porter_stem("car")] == SYNONYM_FACTOR


def test_synonym_set_all_pairs():
    lex = SynonymLexicon()
    lex.add_synonyms("a1", "b1", "c1")
    related = dict(lex.related("a1"))
    assert set(related) == {"b1", "c1"}


def test_hypernym_both_directions_weaker():
    lex = SynonymLexicon()
    lex.add_hypernym("dog", "animal")
    assert dict(lex.related(porter_stem("dog")))[porter_stem("animal")] == HYPERNYM_FACTOR
    assert dict(lex.related(porter_stem("animal")))[porter_stem("dog")] == HYPERNYM_FACTOR


def test_stronger_relation_wins():
    lex = SynonymLexicon()
    lex.add_hypernym("cat", "pet")
    lex.add_synonyms("cat", "pet")
    assert dict(lex.related(porter_stem("cat")))[porter_stem("pet")] == SYNONYM_FACTOR


def test_related_sorted_by_factor():
    lex = SynonymLexicon()
    lex.add_hypernym("x9", "weak")
    lex.add_synonyms("x9", "strong")
    factors = [f for _, f in lex.related("x9")]
    assert factors == sorted(factors, reverse=True)


def test_entries_stored_stemmed():
    lex = SynonymLexicon()
    lex.add_synonyms("publications", "papers")
    assert porter_stem("publication") in lex


def test_default_lexicon_covers_domain():
    stem = porter_stem
    related = dict(DEFAULT_LEXICON.related(stem("paper")))
    assert stem("publication") in related
    related = dict(DEFAULT_LEXICON.related(stem("movie")))
    assert stem("film") in related


def test_default_lexicon_hypernyms():
    stem = porter_stem
    related = dict(DEFAULT_LEXICON.related(stem("researcher")))
    assert related.get(stem("person")) == HYPERNYM_FACTOR


def test_no_self_links():
    lex = SynonymLexicon()
    lex.add_synonyms("same", "same")
    assert lex.related(porter_stem("same")) == []
