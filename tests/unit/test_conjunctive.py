"""Unit tests for the conjunctive-query model (Definition 2)."""

import pytest

from repro.query.conjunctive import Atom, ConjunctiveQuery, QueryValidationError
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, URI, Variable

EX = Namespace("http://t/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestAtom:
    def test_variables_in_order(self):
        atom = Atom(EX.p, x, y)
        assert atom.variables == (x, y)

    def test_constant_args_have_no_variables(self):
        atom = Atom(EX.p, x, Literal("v"))
        assert atom.variables == (x,)

    def test_literal_subject_rejected(self):
        with pytest.raises(QueryValidationError):
            Atom(EX.p, Literal("v"), x)

    def test_non_uri_predicate_rejected(self):
        with pytest.raises(QueryValidationError):
            Atom("p", x, y)

    def test_substitute(self):
        atom = Atom(EX.p, x, y)
        ground = atom.substitute({x: EX.a, y: Literal("v")})
        assert ground == Atom(EX.p, EX.a, Literal("v"))

    def test_substitute_partial(self):
        atom = Atom(EX.p, x, y)
        assert atom.substitute({x: EX.a}) == Atom(EX.p, EX.a, y)

    def test_str(self):
        assert str(Atom(EX.p, x, Literal("v"))) == "p(?x, 'v')"


class TestConjunctiveQuery:
    def test_requires_atoms(self):
        with pytest.raises(QueryValidationError):
            ConjunctiveQuery([])

    def test_all_variables_distinguished_by_default(self):
        q = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
        assert q.distinguished == (x, y, z)
        assert q.undistinguished == ()

    def test_explicit_projection(self):
        q = ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[x])
        assert q.distinguished == (x,)
        assert q.undistinguished == (y,)

    def test_unknown_distinguished_rejected(self):
        with pytest.raises(QueryValidationError):
            ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[z])

    def test_duplicate_distinguished_rejected(self):
        with pytest.raises(QueryValidationError):
            ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[x, x])

    def test_constants(self):
        q = ConjunctiveQuery([Atom(EX.p, x, Literal("v")), Atom(EX.q, x, EX.c)])
        assert q.constants == {Literal("v"), EX.c}

    def test_predicates(self):
        q = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
        assert q.predicates == {EX.p, EX.q}

    def test_is_connected_true(self):
        q = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
        assert q.is_connected()

    def test_is_connected_false(self):
        q = ConjunctiveQuery([Atom(EX.p, x, x), Atom(EX.q, y, y)])
        assert not q.is_connected()

    def test_single_atom_connected(self):
        assert ConjunctiveQuery([Atom(EX.p, x, y)]).is_connected()

    def test_equality_ignores_atom_order(self):
        q1 = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, z)])
        q2 = ConjunctiveQuery([Atom(EX.q, y, z), Atom(EX.p, x, y)])
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_equality_respects_projection(self):
        q1 = ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[x])
        q2 = ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[y])
        assert q1 != q2

    def test_project_creates_new_query(self):
        q = ConjunctiveQuery([Atom(EX.p, x, y)])
        projected = q.project([y])
        assert projected.distinguished == (y,)
        assert q.distinguished == (x, y)

    def test_str_shows_existentials(self):
        q = ConjunctiveQuery([Atom(EX.p, x, y)], distinguished=[x])
        assert "∃" in str(q)
        assert "?y" in str(q)

    def test_iter_and_len(self):
        atoms = [Atom(EX.p, x, y), Atom(EX.q, y, z)]
        q = ConjunctiveQuery(atoms)
        assert list(q) == atoms
        assert len(q) == 2
