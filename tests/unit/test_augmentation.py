"""Unit tests for augmentation of the summary graph (Definition 5)."""

import pytest

from repro.datasets.example import EX
from repro.keyword.keyword_index import (
    AttributeMatch,
    ClassMatch,
    RelationMatch,
    ValueMatch,
)
from repro.rdf.terms import Literal
from repro.summary.augmentation import augment
from repro.summary.elements import SummaryEdgeKind, SummaryVertexKind, THING_KEY
from repro.summary.summary_graph import SummaryGraph


@pytest.fixture(scope="module")
def summary(example_graph):
    return SummaryGraph.from_data_graph(example_graph)


def value_match(literal, occurrences, score=1.0):
    return ValueMatch(Literal(literal), frozenset(occurrences), score)


class TestValueAugmentation:
    def test_value_vertex_and_edges_added(self, summary):
        match = value_match("AIFB", [(EX.name, EX.Institute)])
        augmented = augment(summary, [[match]])
        value_key = ("value", Literal("AIFB"))
        assert augmented.graph.has_element(value_key)
        edge_key = ("edge", EX.name, ("class", EX.Institute), value_key)
        assert augmented.graph.has_element(edge_key)
        assert augmented.graph.edge(edge_key).kind is SummaryEdgeKind.ATTRIBUTE

    def test_value_vertex_is_keyword_element(self, summary):
        match = value_match("AIFB", [(EX.name, EX.Institute)])
        augmented = augment(summary, [[match]])
        assert ("value", Literal("AIFB")) in augmented.keyword_elements[0]

    def test_value_score_recorded(self, summary):
        match = value_match("AIFB", [(EX.name, EX.Institute)], score=0.7)
        augmented = augment(summary, [[match]])
        assert augmented.matching_score(("value", Literal("AIFB"))) == 0.7

    def test_multiple_occurrence_classes(self, summary):
        match = value_match(
            "shared", [(EX.name, EX.Institute), (EX.name, EX.Project)]
        )
        augmented = augment(summary, [[match]])
        value_key = ("value", Literal("shared"))
        incident = augmented.graph.incident_edges(value_key)
        assert len(incident) == 2

    def test_untyped_occurrence_maps_to_thing(self, summary):
        match = value_match("orphan", [(EX.name, None)])
        augmented = augment(summary, [[match]])
        assert augmented.graph.has_element(THING_KEY)
        edge_key = ("edge", EX.name, THING_KEY, ("value", Literal("orphan")))
        assert augmented.graph.has_element(edge_key)

    def test_unknown_class_dropped(self, summary):
        match = value_match("ghost", [(EX.name, EX.UnknownClass)])
        augmented = augment(summary, [[match]])
        assert not augmented.graph.has_element(("value", Literal("ghost")))
        assert augmented.keyword_elements[0] == set()


class TestAttributeAugmentation:
    def test_artificial_node_and_edges(self, summary):
        match = AttributeMatch(EX.name, frozenset({EX.Institute, EX.Project}), 1.0)
        augmented = augment(summary, [[match]])
        artificial_key = ("avalue", EX.name)
        assert augmented.graph.has_element(artificial_key)
        vertex = augmented.graph.vertex(artificial_key)
        assert vertex.kind is SummaryVertexKind.ARTIFICIAL
        assert len(augmented.graph.incident_edges(artificial_key)) == 2

    def test_added_edges_are_keyword_elements(self, summary):
        match = AttributeMatch(EX.name, frozenset({EX.Institute}), 0.9)
        augmented = augment(summary, [[match]])
        edge_key = ("edge", EX.name, ("class", EX.Institute), ("avalue", EX.name))
        assert edge_key in augmented.keyword_elements[0]
        assert augmented.matching_score(edge_key) == 0.9


class TestClassAndRelation:
    def test_class_match_marks_vertex(self, summary):
        augmented = augment(summary, [[ClassMatch(EX.Publication, 0.8)]])
        key = ("class", EX.Publication)
        assert key in augmented.keyword_elements[0]
        assert augmented.matching_score(key) == 0.8

    def test_unknown_class_match_ignored(self, summary):
        augmented = augment(summary, [[ClassMatch(EX.Nope, 1.0)]])
        assert augmented.keyword_elements[0] == set()

    def test_relation_match_marks_all_edges(self, summary):
        augmented = augment(summary, [[RelationMatch(EX.author, 1.0)]])
        elements = augmented.keyword_elements[0]
        assert elements
        for key in elements:
            assert augmented.graph.edge(key).label == EX.author


class TestGeneral:
    def test_base_summary_not_mutated(self, summary):
        before = len(summary)
        augment(summary, [[value_match("AIFB", [(EX.name, EX.Institute)])]])
        assert len(summary) == before

    def test_score_keeps_maximum(self, summary):
        low = ClassMatch(EX.Publication, 0.3)
        high = ClassMatch(EX.Publication, 0.9)
        augmented = augment(summary, [[low], [high]])
        assert augmented.matching_score(("class", EX.Publication)) == 0.9

    def test_default_score_is_one(self, summary):
        augmented = augment(summary, [[]])
        assert augmented.matching_score(("class", EX.Publication)) == 1.0

    def test_unmatched_keywords_reported(self, summary):
        augmented = augment(summary, [[], [ClassMatch(EX.Publication, 1.0)]])
        assert augmented.unmatched_keywords() == [0]

    def test_keyword_count(self, summary):
        augmented = augment(summary, [[], [], []])
        assert augmented.keyword_count == 3
