"""Unit tests for the N-Triples parser/serializer."""

import pytest

from repro.rdf.ntriples import NTriplesParseError, parse_ntriples, serialize_ntriples
from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.triples import Triple


def parse_one(line: str) -> Triple:
    triples = list(parse_ntriples(line))
    assert len(triples) == 1
    return triples[0]


class TestParsing:
    def test_uri_triple(self):
        t = parse_one("<a:s> <a:p> <a:o> .")
        assert t == Triple(URI("a:s"), URI("a:p"), URI("a:o"))

    def test_plain_literal(self):
        t = parse_one('<a:s> <a:p> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        t = parse_one('<a:s> <a:p> "chat"@fr .')
        assert t.object == Literal("chat", language="fr")

    def test_typed_literal(self):
        t = parse_one('<a:s> <a:p> "1"^^<x:int> .')
        assert t.object == Literal("1", datatype=URI("x:int"))

    def test_bnode_subject_and_object(self):
        t = parse_one("_:a <a:p> _:b .")
        assert t.subject == BNode("a")
        assert t.object == BNode("b")

    def test_string_escapes(self):
        t = parse_one('<a:s> <a:p> "tab\\there\\nnl \\"q\\" \\\\bs" .')
        assert t.object.lexical == 'tab\there\nnl "q" \\bs'

    def test_unicode_escapes(self):
        t = parse_one('<a:s> <a:p> "\\u00e9\\U0001F600" .')
        assert t.object.lexical == "é\U0001F600"

    def test_comments_and_blank_lines_skipped(self):
        doc = "# comment\n\n<a:s> <a:p> <a:o> .\n   \n# another\n"
        assert len(list(parse_ntriples(doc))) == 1

    def test_trailing_comment_allowed(self):
        t = parse_one("<a:s> <a:p> <a:o> . # trailing")
        assert t.predicate == URI("a:p")

    def test_multiple_lines(self):
        doc = '<a:s> <a:p> <a:o> .\n<a:s> <a:p> "v" .'
        assert len(list(parse_ntriples(doc))) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<a:s> <a:p> <a:o>",  # missing dot
            '"lit" <a:p> <a:o> .',  # literal subject
            "<a:s> _:b <a:o> .",  # bnode predicate
            "<a:s> <a:p> .",  # missing object
            '<a:s> <a:p> "unterminated .',
            "<a:s> <unterminated <a:o> .",
            "<a:s> <a:p> <a:o> . extra",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples(line))

    def test_error_carries_line_number(self):
        doc = "<a:s> <a:p> <a:o> .\nbad line"
        with pytest.raises(NTriplesParseError) as excinfo:
            list(parse_ntriples(doc))
        assert excinfo.value.line_number == 2


class TestRoundTrip:
    def test_serialize_then_parse(self):
        triples = [
            Triple(URI("a:s"), URI("a:p"), URI("a:o")),
            Triple(URI("a:s"), URI("a:p"), Literal('with "quotes"\nand newline')),
            Triple(BNode("b1"), URI("a:p"), Literal("x", language="en")),
            Triple(URI("a:s"), URI("a:p"), Literal("5", datatype=URI("x:int"))),
        ]
        document = serialize_ntriples(triples)
        assert list(parse_ntriples(document)) == triples


class TestStreamingContract:
    """parse_ntriples must consume sources line by line, never .read()."""

    class _NoReadFile:
        """Iterable of lines whose bulk-read methods are booby-trapped."""

        def __init__(self, lines):
            self._lines = list(lines)

        def read(self, *args):
            raise AssertionError("parse_ntriples called .read()")

        def readlines(self, *args):
            raise AssertionError("parse_ntriples called .readlines()")

        def __iter__(self):
            return iter(self._lines)

    def test_never_calls_read(self):
        source = self._NoReadFile(
            ["<a:s> <a:p> <a:o> .\n", "# comment\n", '<a:s> <a:p> "v" .\n']
        )
        triples = list(parse_ntriples(source))
        assert triples == [
            Triple(URI("a:s"), URI("a:p"), URI("a:o")),
            Triple(URI("a:s"), URI("a:p"), Literal("v")),
        ]

    def test_generator_source_is_lazy(self):
        consumed = []

        def lines():
            for n in range(100):
                consumed.append(n)
                yield f"<a:s{n}> <a:p> <a:o> .\n"

        parser = parse_ntriples(lines())
        next(parser)
        # Only a bounded prefix of the source was pulled to produce the
        # first triple — the document was never materialized.
        assert len(consumed) < 5

    def test_error_line_number_from_line_iterable(self):
        source = self._NoReadFile(["<a:s> <a:p> <a:o> .\n", "\n", "nonsense\n"])
        with pytest.raises(NTriplesParseError) as excinfo:
            list(parse_ntriples(source))
        assert excinfo.value.line_number == 3
        assert "column" in str(excinfo.value)

    def test_file_handle_roundtrip(self, tmp_path):
        path = tmp_path / "doc.nt"
        triples = [Triple(URI("a:s"), URI("a:p"), Literal("x")) for _ in range(1)]
        path.write_text(serialize_ntriples(triples))
        with open(path) as fh:
            assert list(parse_ntriples(fh)) == triples
