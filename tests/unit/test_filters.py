"""Unit tests for the FILTER extension (the paper's Section IX future work)."""

import pytest

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.evaluator import QueryEvaluator
from repro.query.filters import (
    Filter,
    FilteredQuery,
    parse_filter_keyword,
)
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore

EX = Namespace("http://t/")
x, y = Variable("x"), Variable("y")


class TestFilter:
    @pytest.mark.parametrize(
        "op,value,term,expected",
        [
            ("<", "2005", "2004", True),
            ("<", "2005", "2005", False),
            ("<=", "2005", "2005", True),
            (">", "2000", "2001", True),
            (">", "2000", "2000", False),
            (">=", "2000", "2000", True),
            ("!=", "2000", "2001", True),
            ("!=", "2000", "2000", False),
        ],
    )
    def test_comparisons(self, op, value, term, expected):
        f = Filter(x, op, Literal(value))
        assert f.accepts(Literal(term)) is expected

    def test_numeric_comparison_not_lexicographic(self):
        f = Filter(x, "<", Literal("1000"))
        assert f.accepts(Literal("999"))  # "999" > "1000" lexicographically

    def test_text_comparison(self):
        f = Filter(x, "<", Literal("m"))
        assert f.accepts(Literal("alpha"))
        assert not f.accepts(Literal("zulu"))

    def test_range(self):
        f = Filter(x, "range", Literal("2000"), Literal("2005"))
        assert f.accepts(Literal("2000"))
        assert f.accepts(Literal("2003"))
        assert f.accepts(Literal("2005"))
        assert not f.accepts(Literal("2006"))
        assert not f.accepts(Literal("1999"))

    def test_range_requires_upper(self):
        with pytest.raises(ValueError):
            Filter(x, "range", Literal("1"))

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            Filter(x, "~", Literal("1"))

    def test_rebind(self):
        f = Filter(x, "<", Literal("5")).rebind(y)
        assert f.variable == y

    def test_sparql_rendering(self):
        assert Filter(x, "<", Literal("2005")).to_sparql() == 'FILTER(?x < "2005")'
        range_clause = Filter(x, "range", Literal("1"), Literal("2")).to_sparql()
        assert ">=" in range_clause and "<=" in range_clause


class TestFilteredQuery:
    def make(self):
        store = TripleStore(
            [
                Triple(EX.a, EX.year, Literal("2001")),
                Triple(EX.b, EX.year, Literal("2004")),
                Triple(EX.c, EX.year, Literal("2008")),
            ]
        )
        query = ConjunctiveQuery([Atom(EX.year, x, y)])
        return store, query

    def test_evaluate_applies_filters(self):
        store, query = self.make()
        fq = FilteredQuery(query, [Filter(y, "<", Literal("2005"))])
        answers = fq.evaluate(QueryEvaluator(store))
        subjects = {a[x] for a in answers}
        assert subjects == {EX.a, EX.b}

    def test_evaluate_with_limit(self):
        store, query = self.make()
        fq = FilteredQuery(query, [Filter(y, ">", Literal("2000"))])
        assert len(fq.evaluate(QueryEvaluator(store), limit=2)) == 2

    def test_no_filters_passthrough(self):
        store, query = self.make()
        fq = FilteredQuery(query, [])
        assert len(fq.evaluate(QueryEvaluator(store))) == 3

    def test_unknown_filter_variable_rejected(self):
        _, query = self.make()
        with pytest.raises(ValueError):
            FilteredQuery(query, [Filter(Variable("nope"), "<", Literal("1"))])

    def test_sparql_contains_filter_clause(self):
        _, query = self.make()
        fq = FilteredQuery(query, [Filter(y, "<", Literal("2005"))])
        sparql = fq.to_sparql()
        assert "FILTER(?y <" in sparql
        assert sparql.rstrip().endswith("}")


class TestParseFilterKeyword:
    @pytest.mark.parametrize(
        "text,op,value",
        [
            ("before 2005", "<", "2005"),
            ("until 2005", "<=", "2005"),
            ("after 2000", ">", "2000"),
            ("since 2000", ">=", "2000"),
            ("under 300", "<", "300"),
            ("over 10", ">", "10"),
            ("not 2003", "!=", "2003"),
            ("BEFORE 2005", "<", "2005"),
        ],
    )
    def test_comparison_words(self, text, op, value):
        fk = parse_filter_keyword(text)
        assert fk is not None
        assert fk.op == op
        assert fk.value == Literal(value)

    @pytest.mark.parametrize("text", ["2000-2005", "2000..2005", "2000 to 2005"])
    def test_range_syntaxes(self, text):
        fk = parse_filter_keyword(text)
        assert fk.op == "range"
        assert (fk.value.lexical, fk.upper.lexical) == ("2000", "2005")

    def test_reversed_range_normalized(self):
        fk = parse_filter_keyword("2005-2000")
        assert (fk.value.lexical, fk.upper.lexical) == ("2000", "2005")

    @pytest.mark.parametrize("text", ["cimiano", "2005", "before", "soon 2005"])
    def test_non_filters(self, text):
        assert parse_filter_keyword(text) is None

    def test_bind(self):
        fk = parse_filter_keyword("before 2005")
        f = fk.bind(x)
        assert f.variable == x and f.op == "<"


class TestEngineFilters:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.core.engine import KeywordSearchEngine
        from repro.datasets import DblpConfig, generate_dblp

        return KeywordSearchEngine(
            generate_dblp(DblpConfig(publications=300)), cost_model="c3", k=8
        )

    def test_filter_keyword_becomes_filter(self, engine):
        filtered = engine.search_with_filters("cimiano before 2005", k=8)
        assert filtered
        top = filtered[0]
        assert len(top.filters) == 1
        assert top.filters[0].op == "<"
        # The filtered variable appears in a year atom.
        from repro.datasets.dblp import DBLP

        year_atoms = [a for a in top.query.atoms if a.predicate == DBLP.year]
        assert year_atoms
        assert year_atoms[0].arg2 == top.filters[0].variable

    def test_answers_satisfy_filter(self, engine):
        filtered = engine.search_with_filters("turing since 2000", k=8)
        found_any = False
        for fq in filtered[:3]:
            for answer in engine.execute_filtered(fq, limit=10):
                found_any = True
                for f in fq.filters:
                    assert f.accepts(answer.as_dict()[f.variable])
        assert found_any

    def test_range_filter(self, engine):
        filtered = engine.search_with_filters("cimiano 2000-2006", k=8)
        assert filtered
        assert filtered[0].filters[0].op == "range"

    def test_out_of_data_operand_uses_kind_fallback(self, engine):
        filtered = engine.search_with_filters("cimiano before 2050", k=8)
        assert filtered  # 2050 has no V-vertex; numeric-kind fallback applies

    def test_requires_plain_keyword(self, engine):
        with pytest.raises(ValueError):
            engine.search_with_filters("before 2005")

    def test_plain_search_unaffected(self, engine):
        # No filter words: behaves exactly like search().
        filtered = engine.search_with_filters("cimiano publications", k=5)
        plain = engine.search("cimiano publications", k=5)
        assert len(filtered) == len(plain.candidates)
        assert all(not fq.filters for fq in filtered)
