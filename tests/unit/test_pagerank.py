"""Unit tests for PageRank scoring over the summary graph."""

import pytest

from repro.datasets.example import EX
from repro.scoring.pagerank import PageRankCost, pagerank
from repro.summary.augmentation import augment
from repro.summary.summary_graph import SummaryGraph


@pytest.fixture(scope="module")
def summary(example_graph):
    return SummaryGraph.from_data_graph(example_graph)


def test_ranks_sum_to_one(summary):
    ranks = pagerank(summary)
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)


def test_all_vertices_ranked(summary):
    ranks = pagerank(summary)
    assert set(ranks) == {v.key for v in summary.vertices}


def test_sink_of_subclass_chain_ranks_high(summary):
    # Agent receives subclass edges from Institute and Person.
    ranks = pagerank(summary)
    assert ranks[("class", EX.Agent)] > ranks[("class", EX.Publication)]


def test_empty_graph():
    assert pagerank(SummaryGraph()) == {}


def test_cost_model_produces_positive_costs(summary):
    augmented = augment(summary, [])
    costs = PageRankCost().element_costs(augmented)
    assert len(costs) == len(summary)
    assert all(c > 0 for c in costs.values())


def test_highest_ranked_vertex_is_cheapest(summary):
    augmented = augment(summary, [])
    ranks = pagerank(summary)
    costs = PageRankCost().element_costs(augmented)
    best = max(ranks, key=ranks.get)
    vertex_costs = {v.key: costs[v.key] for v in summary.vertices}
    assert vertex_costs[best] == min(vertex_costs.values())
