"""Unit tests for the summary graph (Definition 4)."""

import pytest

from repro.datasets.example import EX
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal
from repro.rdf.triples import Triple
from repro.summary.elements import (
    THING_KEY,
    SummaryEdgeKind,
    SummaryVertexKind,
    is_edge_key,
)
from repro.summary.summary_graph import SummaryGraph


@pytest.fixture(scope="module")
def summary(example_graph):
    return SummaryGraph.from_data_graph(example_graph)


class TestConstruction:
    def test_one_vertex_per_class(self, summary, example_graph):
        class_vertices = [
            v for v in summary.vertices if v.kind is SummaryVertexKind.CLASS
        ]
        assert len(class_vertices) == len(example_graph.classes)

    def test_no_thing_when_all_typed(self, summary):
        assert not summary.has_element(THING_KEY)

    def test_thing_aggregates_untyped(self):
        graph = DataGraph(
            [
                Triple(EX.a, EX.rel, EX.b),  # both untyped
                Triple(EX.c, RDF.type, EX.C1),
            ]
        )
        summary = SummaryGraph.from_data_graph(graph)
        thing = summary.vertex(THING_KEY)
        assert thing.agg_count == 2

    def test_aggregation_counts(self, summary):
        researcher = summary.vertex(("class", EX.Researcher))
        assert researcher.agg_count == 2
        project = summary.vertex(("class", EX.Project))
        assert project.agg_count == 2

    def test_relation_edges_projected_to_classes(self, summary):
        edge_names = {(e.name, e.source_key, e.target_key) for e in summary.edges}
        assert (
            "author",
            ("class", EX.Publication),
            ("class", EX.Researcher),
        ) in edge_names

    def test_relation_edge_aggregation_count(self, summary):
        edge = next(e for e in summary.edges if e.name == "author")
        assert edge.agg_count == 2  # pub1 has two author edges

    def test_subclass_edges_preserved(self, summary):
        subclass_edges = [
            e for e in summary.edges if e.kind is SummaryEdgeKind.SUBCLASS
        ]
        assert len(subclass_edges) == 3

    def test_attribute_edges_not_in_base_summary(self, summary):
        assert all(e.kind is not SummaryEdgeKind.ATTRIBUTE for e in summary.edges)

    def test_totals_recorded(self, summary, example_graph):
        stats = example_graph.stats()
        assert summary.total_entities == stats["entities"]
        assert summary.total_relation_edges == stats["relation_edges"]

    def test_multi_typed_entity_counted_per_class(self):
        graph = DataGraph(
            [
                Triple(EX.a, RDF.type, EX.C1),
                Triple(EX.a, RDF.type, EX.C2),
                Triple(EX.a, EX.rel, EX.a),
            ]
        )
        summary = SummaryGraph.from_data_graph(graph)
        assert summary.vertex(("class", EX.C1)).agg_count == 1
        assert summary.vertex(("class", EX.C2)).agg_count == 1
        # The self-relation projects to all four class combinations.
        relation_edges = [
            e for e in summary.edges if e.kind is SummaryEdgeKind.RELATION
        ]
        assert len(relation_edges) == 4


class TestPathSoundness:
    def test_every_data_relation_has_summary_edge(self, summary, example_graph):
        for triple in example_graph.relation_triples():
            source_classes = example_graph.types_of(triple.subject) or {None}
            target_classes = example_graph.types_of(triple.object) or {None}
            found = any(
                summary.has_element(
                    (
                        "edge",
                        triple.predicate,
                        summary.class_key(sc),
                        summary.class_key(tc),
                    )
                )
                for sc in source_classes
                for tc in target_classes
            )
            assert found, f"no summary edge for {triple}"


class TestNavigation:
    def test_neighbors_of_vertex_are_edges(self, summary):
        for key in summary.incident_edges(("class", EX.Publication)):
            assert is_edge_key(key)

    def test_neighbors_of_edge_are_endpoints(self, summary):
        edge = next(e for e in summary.edges if e.name == "author")
        assert set(summary.neighbors(edge.key)) == {
            ("class", EX.Publication),
            ("class", EX.Researcher),
        }

    def test_self_loop_neighbor_single(self):
        graph = DataGraph(
            [
                Triple(EX.a, RDF.type, EX.C1),
                Triple(EX.b, RDF.type, EX.C1),
                Triple(EX.a, EX.rel, EX.b),
            ]
        )
        summary = SummaryGraph.from_data_graph(graph)
        loop = next(e for e in summary.edges if e.kind is SummaryEdgeKind.RELATION)
        assert summary.neighbors(loop.key) == (("class", EX.C1),)

    def test_degree(self, summary):
        # author + hasProject edges touch Publication; no subclass edge does.
        assert summary.degree(("class", EX.Publication)) == 2

    def test_element_lookup(self, summary):
        vertex = summary.element(("class", EX.Publication))
        assert vertex.kind is SummaryVertexKind.CLASS
        edge_key = summary.incident_edges(("class", EX.Publication))[0]
        assert is_edge_key(summary.element(edge_key).key)


class TestCopy:
    def test_copy_is_independent(self, summary):
        clone = summary.copy()
        clone.add_value_vertex(Literal("new"))
        assert not summary.has_element(("value", Literal("new")))
        assert clone.has_element(("value", Literal("new")))

    def test_copy_preserves_totals(self, summary):
        clone = summary.copy()
        assert clone.total_entities == summary.total_entities


class TestMutators:
    def test_add_edge_requires_endpoints(self, summary):
        clone = summary.copy()
        with pytest.raises(KeyError):
            clone.add_edge(EX.rel, SummaryEdgeKind.RELATION, ("class", EX.Nope), THING_KEY)

    def test_add_edge_idempotent(self, summary):
        clone = summary.copy()
        v = clone.add_value_vertex(Literal("v"))
        e1 = clone.add_edge(EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Project), v.key)
        e2 = clone.add_edge(EX.name, SummaryEdgeKind.ATTRIBUTE, ("class", EX.Project), v.key)
        assert e1 is e2

    def test_stats(self, summary):
        stats = summary.stats()
        assert stats["vertices"] == 6
        assert stats["edges"] == 6
        assert stats["estimated_bytes"] > 0
