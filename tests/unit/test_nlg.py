"""Unit tests for natural-language verbalization."""

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.nlg import verbalize, _humanize
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI, Variable

EX = Namespace("http://t/")
x, y = Variable("x"), Variable("y")


def test_humanize_camel_case():
    assert _humanize("worksAt") == "works at"
    assert _humanize("hasProject") == "has project"
    assert _humanize("snake_case") == "snake case"


def test_type_and_attribute():
    q = ConjunctiveQuery(
        [
            Atom(RDF.type, x, EX.Publication),
            Atom(EX.year, x, Literal("2006")),
        ]
    )
    text = verbalize(q)
    assert "Find ?x" in text
    assert "Publication" in text
    assert "year is '2006'" in text


def test_relation_between_variables():
    q = ConjunctiveQuery(
        [
            Atom(RDF.type, x, EX.Publication),
            Atom(EX.author, x, y),
            Atom(EX.name, y, Literal("Ada")),
        ]
    )
    text = verbalize(q)
    assert "author is something (?y)" in text
    assert "name is 'Ada'" in text


def test_subclass_rendered_as_kind_of():
    q = ConjunctiveQuery(
        [Atom(EX.p, x, y), Atom(RDFS.subClassOf, x, EX.Agent)]
    )
    assert "kind of Agent" in verbalize(q)


def test_undistinguished_variable_phrase():
    q = ConjunctiveQuery(
        [Atom(EX.author, x, y), Atom(EX.name, y, Literal("Ada"))],
        distinguished=[x],
    )
    text = verbalize(q)
    assert "where ?y is" in text


def test_ends_with_period():
    q = ConjunctiveQuery([Atom(EX.year, x, Literal("2006"))])
    assert verbalize(q).endswith(".")
