"""Unit tests for the keyword-element map (Section IV-A)."""

import pytest

from repro.datasets.example import EX
from repro.keyword.keyword_index import (
    AttributeMatch,
    ClassMatch,
    KeywordIndex,
    RelationMatch,
    ValueMatch,
)
from repro.rdf.terms import Literal


@pytest.fixture(scope="module")
def index(example_graph):
    return KeywordIndex(example_graph)


def matches_of_type(matches, cls):
    return [m for m in matches if isinstance(m, cls)]


class TestLookupKinds:
    def test_class_keyword(self, index):
        matches = index.lookup("publication")
        classes = matches_of_type(matches, ClassMatch)
        assert any(m.cls == EX.Publication for m in classes)

    def test_value_keyword(self, index):
        matches = index.lookup("aifb")
        values = matches_of_type(matches, ValueMatch)
        assert any(m.value == Literal("AIFB") for m in values)

    def test_relation_keyword(self, index):
        matches = index.lookup("author")
        relations = matches_of_type(matches, RelationMatch)
        assert any(m.label == EX.author for m in relations)

    def test_attribute_keyword(self, index):
        matches = index.lookup("name")
        attributes = matches_of_type(matches, AttributeMatch)
        assert len(attributes) == 1
        # The `name` attribute is used by researchers, institutes, projects.
        assert EX.Researcher in attributes[0].classes
        assert EX.Institute in attributes[0].classes
        assert EX.Project in attributes[0].classes

    def test_entity_uris_not_indexed(self, index):
        # `pub1URI` identifies an E-vertex; the paper omits those.
        assert index.lookup("pub1URI") == []


class TestValueStructures:
    def test_value_match_carries_occurrence_structure(self, index):
        match = matches_of_type(index.lookup("cimiano"), ValueMatch)[0]
        # [V-vertex, A-edge, (C-vertex_1..n)]: name edge from Researcher.
        assert (EX.name, EX.Researcher) in match.occurrences

    def test_untyped_subject_yields_none_class(self, example_graph):
        from repro.rdf.graph import DataGraph
        from repro.rdf.triples import Triple

        graph = DataGraph([Triple(EX.mystery, EX.name, Literal("Orphan"))])
        index = KeywordIndex(graph)
        match = matches_of_type(index.lookup("orphan"), ValueMatch)[0]
        assert (EX.name, None) in match.occurrences


class TestImpreciseMatching:
    def test_stemming_matches_plural(self, index):
        assert index.lookup("publications")

    def test_fuzzy_matches_typo(self, index):
        matches = index.lookup("cimano")  # missing 'i'
        values = matches_of_type(matches, ValueMatch)
        assert any(m.value == Literal("P. Cimiano") for m in values)
        assert all(m.score < 1.0 for m in values)

    def test_fuzzy_disabled(self, example_graph):
        index = KeywordIndex(example_graph, fuzzy_max_distance=0)
        assert index.lookup("cimano") == []

    def test_synonym_match_scores_below_exact(self, index):
        # "paper" reaches class Publication through the lexicon.
        matches = matches_of_type(index.lookup("paper"), ClassMatch)
        assert matches
        assert all(m.score < 1.0 for m in matches)

    def test_exact_match_scores_one_for_single_term_label(self, index):
        matches = matches_of_type(index.lookup("aifb"), ValueMatch)
        assert matches[0].score == pytest.approx(1.0)

    def test_multi_term_label_coverage_penalty(self, index):
        # "cimiano" matches the two-term label "P. Cimiano".
        match = matches_of_type(index.lookup("cimiano"), ValueMatch)[0]
        assert match.score == pytest.approx((1 / 2) ** 0.5)


class TestMultiTermKeywords:
    def test_all_terms_must_match(self, index):
        matches = index.lookup("x media")
        values = matches_of_type(matches, ValueMatch)
        assert any(m.value == Literal("X-Media") for m in values)

    def test_conjunction_fails_if_one_term_misses(self, index):
        assert index.lookup("x nonexistentterm") == []

    def test_stopword_only_keyword_empty(self, index):
        assert index.lookup("the of") == []


class TestRanking:
    def test_sorted_by_score(self, index):
        matches = index.lookup("name")
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_cap_respected(self, example_graph):
        index = KeywordIndex(example_graph, max_matches_per_keyword=1)
        assert len(index.lookup("name")) == 1

    def test_lookup_all(self, index):
        per_keyword = index.lookup_all(["aifb", "cimiano"])
        assert len(per_keyword) == 2
        assert all(isinstance(m, ValueMatch) for m in per_keyword[0])


class TestStats:
    def test_stats_present(self, index):
        stats = index.stats()
        assert stats["terms"] > 0
        assert stats["elements"] > 0
        assert stats["build_seconds"] >= 0


class TestMatchObjects:
    def test_with_score(self):
        m = ClassMatch(EX.Publication, 0.5)
        assert m.with_score(0.9).score == 0.9
        assert m.with_score(0.9).cls == EX.Publication

    def test_element_keys_distinct_across_kinds(self):
        assert ClassMatch(EX.x, 1).element_key != RelationMatch(EX.x, 1).element_key

    def test_immutability(self):
        m = ClassMatch(EX.Publication, 0.5)
        with pytest.raises(AttributeError):
            m.score = 1.0


class TestLookupCache:
    def test_repeated_lookup_hits_cache(self, example_graph):
        index = KeywordIndex(example_graph)
        first = index.lookup("publication")
        second = index.lookup("publication")
        assert first is not second  # callers get fresh lists
        assert [repr(m) for m in first] == [repr(m) for m in second]
        assert (index.version, "publication") in index._lookup_cache

    def test_version_bump_invalidates_entries(self, example_graph):
        index = KeywordIndex(example_graph)
        before = index.lookup("publication")
        version = index.version
        index.refresh_class(EX.Publication)
        assert index.version > version
        after = index.lookup("publication")
        assert [repr(m) for m in after] == [repr(m) for m in before]
        assert (version, "publication") in index._lookup_cache  # aged, not served
        assert (index.version, "publication") in index._lookup_cache

    def test_lru_bound_respected(self, example_graph):
        index = KeywordIndex(example_graph, lookup_cache_size=2)
        index.lookup("publication")
        index.lookup("person")
        index.lookup("article")
        assert len(index._lookup_cache) == 2

    def test_cache_disabled(self, example_graph):
        index = KeywordIndex(example_graph, lookup_cache_size=0)
        index.lookup("publication")
        assert len(index._lookup_cache) == 0
