"""Unit tests for conjunctive-query evaluation (Definition 3)."""

import pytest

from repro.datasets.example import EX
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.evaluator import QueryEvaluator
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, Variable
from repro.store.triple_store import TripleStore

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture(scope="module")
def evaluator(example_graph):
    return QueryEvaluator(TripleStore.from_graph(example_graph))


def fig1c_query():
    """The paper's example conjunctive query (Fig. 1c)."""
    return ConjunctiveQuery(
        [
            Atom(RDF.type, x, EX.Publication),
            Atom(EX.year, x, Literal("2006")),
            Atom(EX.author, x, y),
            Atom(EX.name, y, Literal("P. Cimiano")),
            Atom(EX.worksAt, y, z),
            Atom(EX.name, z, Literal("AIFB")),
        ]
    )


def test_fig1c_answer(evaluator):
    answers = evaluator.evaluate(fig1c_query())
    assert len(answers) == 1
    answer = answers[0]
    assert answer[x] == EX.pub1URI
    assert answer[y] == EX.re2URI
    assert answer[z] == EX.inst1URI


def test_projection(evaluator):
    query = fig1c_query().project([x])
    answers = evaluator.evaluate(query)
    assert [a.values for a in answers] == [(EX.pub1URI,)]


def test_unsatisfiable_constant(evaluator):
    query = ConjunctiveQuery([Atom(EX.year, x, Literal("1900"))])
    assert evaluator.evaluate(query) == []
    assert not evaluator.has_answer(query)


def test_limit(evaluator):
    query = ConjunctiveQuery([Atom(RDF.type, x, EX.Researcher)])
    assert len(evaluator.evaluate(query, limit=1)) == 1
    assert len(evaluator.evaluate(query)) == 2


def test_count(evaluator):
    query = ConjunctiveQuery([Atom(RDF.type, x, EX.Publication)])
    assert evaluator.count(query) == 2


def test_distinct_answers(evaluator):
    # pub1 has two authors; asking only for x must not duplicate it.
    query = ConjunctiveQuery([Atom(EX.author, x, y)], distinguished=[x])
    answers = evaluator.evaluate(query)
    assert len(answers) == 1


def test_ground_query_has_empty_answer_tuple(evaluator):
    query = ConjunctiveQuery(
        [Atom(EX.name, EX.inst1URI, Literal("AIFB"))], distinguished=[]
    )
    answers = evaluator.evaluate(query)
    assert len(answers) == 1
    assert answers[0].values == ()


def test_ground_query_false(evaluator):
    query = ConjunctiveQuery(
        [Atom(EX.name, EX.inst1URI, Literal("WRONG"))], distinguished=[]
    )
    assert evaluator.evaluate(query) == []


def test_cyclic_join(evaluator):
    # x works at the same institute as y, and both author the same pub.
    query = ConjunctiveQuery(
        [
            Atom(EX.author, z, x),
            Atom(EX.author, z, y),
            Atom(EX.worksAt, x, Variable("i")),
            Atom(EX.worksAt, y, Variable("i")),
        ]
    )
    answers = evaluator.evaluate(query)
    pairs = {(a[x], a[y]) for a in answers}
    assert (EX.re1URI, EX.re2URI) in pairs
    assert (EX.re2URI, EX.re1URI) in pairs


def test_answer_repr_and_dict(evaluator):
    query = ConjunctiveQuery([Atom(RDF.type, x, EX.Project)])
    answer = evaluator.evaluate(query)[0]
    assert answer.as_dict() == {x: answer[x]}
    assert "Answer(" in repr(answer)


def test_answer_keyerror(evaluator):
    query = ConjunctiveQuery([Atom(RDF.type, x, EX.Project)])
    answer = evaluator.evaluate(query)[0]
    with pytest.raises(KeyError):
        answer[Variable("nope")]
