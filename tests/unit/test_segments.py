"""Unit tests for the out-of-core build primitives (storage.segments).

The streamed bundle build stands on four small disk-backed structures:
segment files of int64 values, a budgeted external sorter, and two
spools that stream the bundle's grouping / two-level wire shapes.  Each
is held to byte-parity with the in-memory encoder it replaces.
"""

import random

import pytest

from repro.storage.bundle import _encode_two_level
from repro.storage.codec import encode_grouping, encode_ids
from repro.storage.segments import (
    ExternalSorter,
    GroupingSpool,
    SegmentWriter,
    TwoLevelSpool,
    iter_rows,
    iter_value_chunks,
    write_ids_from_segment,
)
from repro.keyword.inverted_index import InvertedIndex, SpillingPostingsBuilder


class _Section:
    """Collects bytes like BundleWriter's section sink."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(bytes(data))

    @property
    def data(self):
        return b"".join(self.chunks)


# ----------------------------------------------------------------------
# SegmentWriter / iterators
# ----------------------------------------------------------------------


def test_segment_roundtrip(tmp_path):
    path = tmp_path / "rows.seg"
    rows = [(i, i * 7 % 13, i * i) for i in range(1000)]
    with SegmentWriter(path, arity=3, buffer_rows=32) as seg:
        for row in rows:
            seg.append(row)
    assert seg.rows == 1000
    assert seg.values == 3000
    assert list(iter_rows(path, 3, chunk_rows=17)) == rows


def test_segment_value_chunks(tmp_path):
    path = tmp_path / "vals.seg"
    values = list(range(257))
    with SegmentWriter(path, arity=1, buffer_rows=8) as seg:
        for v in values:
            seg.append_value(v)
    flat = [v for chunk in iter_value_chunks(path, chunk_values=100) for v in chunk]
    assert flat == values


def test_segment_negative_and_large_values(tmp_path):
    path = tmp_path / "edge.seg"
    values = [-1, 0, 2**62, -(2**62), 42]
    with SegmentWriter(path, arity=1) as seg:
        for v in values:
            seg.append_value(v)
    assert [v for c in iter_value_chunks(path) for v in c] == values


def test_write_ids_from_segment_matches_encode_ids(tmp_path):
    path = tmp_path / "ids.seg"
    values = [random.Random(7).randrange(0, 2**40) for _ in range(513)]
    with SegmentWriter(path, arity=1) as seg:
        for v in values:
            seg.append_value(v)
    section = _Section()
    write_ids_from_segment(section, seg)
    assert section.data == encode_ids(values)


def test_segment_unlink(tmp_path):
    path = tmp_path / "gone.seg"
    with SegmentWriter(path, arity=1) as seg:
        seg.append_value(1)
    assert path.exists()
    seg.unlink()
    assert not path.exists()


# ----------------------------------------------------------------------
# ExternalSorter
# ----------------------------------------------------------------------


def test_external_sorter_matches_sorted(tmp_path):
    rng = random.Random(11)
    rows = [(rng.randrange(100), rng.randrange(100), i) for i in range(2000)]
    sorter = ExternalSorter(tmp_path, arity=3, budget_rows=128)
    for row in rows:
        sorter.add(row)
    assert sorter.runs_spilled >= 2  # the budget actually forced disk runs
    assert list(sorter.sorted_rows()) == sorted(rows)
    sorter.cleanup()


def test_external_sorter_no_spill_when_under_budget(tmp_path):
    rows = [(3, 1), (1, 2), (2, 0)]
    sorter = ExternalSorter(tmp_path, arity=2, budget_rows=100)
    for row in rows:
        sorter.add(row)
    assert sorter.runs_spilled == 0
    assert list(sorter.sorted_rows()) == sorted(rows)
    sorter.cleanup()


def test_external_sorter_is_stable_on_total_order(tmp_path):
    # Rows carry a unique sequence column, so sorted() order is total —
    # the merge must reproduce it exactly even across run boundaries.
    rows = [(i % 5, i) for i in range(100)]
    sorter = ExternalSorter(tmp_path, arity=2, budget_rows=7)
    for row in reversed(rows):
        sorter.add(row)
    assert list(sorter.sorted_rows()) == sorted(rows)
    sorter.cleanup()


def test_external_sorter_empty(tmp_path):
    sorter = ExternalSorter(tmp_path, arity=2, budget_rows=4)
    assert list(sorter.sorted_rows()) == []
    sorter.cleanup()


# ----------------------------------------------------------------------
# GroupingSpool / TwoLevelSpool — byte parity with the codec
# ----------------------------------------------------------------------


def test_grouping_spool_matches_encode_grouping(tmp_path):
    items = [(4, [1, 2, 3]), (9, []), (2, [7]), (5, list(range(50)))]
    spool = GroupingSpool(tmp_path, "g")
    for key, values in items:
        spool.add(key, values)
    section = _Section()
    spool.write_to(section)
    spool.cleanup()
    assert section.data == encode_grouping(items)


def test_grouping_spool_empty(tmp_path):
    spool = GroupingSpool(tmp_path, "empty")
    section = _Section()
    spool.write_to(section)
    spool.cleanup()
    assert section.data == encode_grouping([])


def test_two_level_spool_matches_encode_two_level(tmp_path):
    rng = random.Random(3)
    rows = sorted(
        {(rng.randrange(6), rng.randrange(6), rng.randrange(20)) for _ in range(200)}
    )
    # The in-memory shape _encode_two_level consumes: {a: {b: [c...]}}
    mapping = {}
    for a, b, c in rows:
        mapping.setdefault(a, {}).setdefault(b, []).append(c)
    spool = TwoLevelSpool(tmp_path, "spo")
    spool.feed(iter(rows))
    section = _Section()
    spool.write_to(section)
    spool.cleanup()
    assert section.data == _encode_two_level(mapping, key_id=lambda x: x)


def test_two_level_spool_empty(tmp_path):
    spool = TwoLevelSpool(tmp_path, "empty")
    spool.feed(iter(()))
    section = _Section()
    spool.write_to(section)
    spool.cleanup()
    assert section.data == _encode_two_level({}, key_id=lambda x: x)


# ----------------------------------------------------------------------
# SpillingPostingsBuilder — parity with the in-memory inverted index
# ----------------------------------------------------------------------


def test_spilling_postings_matches_inverted_index(tmp_path):
    rng = random.Random(5)
    index = InvertedIndex()
    builder = SpillingPostingsBuilder(tmp_path, budget_rows=16)
    for element_id in range(120):
        terms = [f"t{rng.randrange(12)}" for _ in range(rng.randrange(1, 5))]
        index.index(element_id, terms)
    # Feed the spilling builder the same (vocab, element, tf, total) rows
    # the streamed build produces, with vocab ids in first-seen order.
    postings = index.state_for_persistence()["postings"]
    vocab = {}
    for term in postings:
        vocab.setdefault(term, len(vocab))
    for term, bucket in postings.items():
        for element_id, (tf, total) in bucket.items():
            builder.add(vocab[term], element_id, tf, total)
    assert builder.runs_spilled >= 2
    merged = {vid: flat for vid, flat in builder.merged_groups()}
    builder.cleanup()
    for term, bucket in postings.items():
        flat = merged[vocab[term]]
        got = {
            flat[i]: (flat[i + 1], flat[i + 2]) for i in range(0, len(flat), 3)
        }
        assert got == {eid: tuple(entry) for eid, entry in bucket.items()}
