"""Unit tests for the indexed triple store."""

import pytest

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore

EX = Namespace("http://t/")

TRIPLES = [
    Triple(EX.a, EX.p, EX.b),
    Triple(EX.a, EX.p, EX.c),
    Triple(EX.a, EX.q, EX.b),
    Triple(EX.b, EX.p, EX.c),
    Triple(EX.b, EX.r, Literal("v")),
]


@pytest.fixture
def store():
    return TripleStore(TRIPLES)


def test_len(store):
    assert len(store) == 5


def test_contains(store):
    assert Triple(EX.a, EX.p, EX.b) in store
    assert Triple(EX.a, EX.p, EX.z) not in store


def test_duplicate_insert_returns_false(store):
    assert store.add(Triple(EX.a, EX.p, EX.b)) is False
    assert len(store) == 5


@pytest.mark.parametrize(
    "pattern,expected_count",
    [
        ((None, None, None), 5),
        ((EX.a, None, None), 3),
        ((None, EX.p, None), 3),
        ((None, None, EX.b), 2),
        ((EX.a, EX.p, None), 2),
        ((None, EX.p, EX.c), 2),
        ((EX.a, None, EX.b), 2),
        ((EX.a, EX.p, EX.b), 1),
        ((EX.z, None, None), 0),
        ((None, EX.z, None), 0),
    ],
)
def test_match_all_access_patterns(store, pattern, expected_count):
    results = list(store.match(*pattern))
    assert len(results) == expected_count
    # Every result actually matches the pattern.
    s, p, o = pattern
    for triple in results:
        assert s is None or triple.subject == s
        assert p is None or triple.predicate == p
        assert o is None or triple.object == o


@pytest.mark.parametrize(
    "pattern",
    [
        (None, None, None),
        (EX.a, None, None),
        (None, EX.p, None),
        (None, None, EX.b),
        (EX.a, EX.p, None),
        (None, EX.p, EX.c),
        (EX.a, None, EX.b),
        (EX.a, EX.p, EX.b),
    ],
)
def test_count_agrees_with_match(store, pattern):
    assert store.count(*pattern) == len(list(store.match(*pattern)))


def test_subjects_objects_helpers(store):
    assert set(store.subjects(EX.p, EX.c)) == {EX.a, EX.b}
    assert set(store.objects(EX.a, EX.p)) == {EX.b, EX.c}


def test_predicates(store):
    assert set(store.predicates()) == {EX.p, EX.q, EX.r}


def test_predicate_cardinality(store):
    assert store.predicate_cardinality(EX.p) == 3
    assert store.predicate_cardinality(EX.z) == 0


def test_from_graph(example_graph):
    store = TripleStore.from_graph(example_graph)
    assert len(store) == len(example_graph)
