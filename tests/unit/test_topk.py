"""Unit tests for the Algorithm 2 candidate list."""

import pytest

from repro.core.subgraph import MatchingSubgraph
from repro.core.topk import CandidateList


def subgraph(elements, cost, connecting=None):
    """A single-path subgraph over the given elements with a fixed cost."""
    return MatchingSubgraph(connecting or elements[0], [list(elements)], cost)


def test_requires_positive_k():
    with pytest.raises(ValueError):
        CandidateList(0)


def test_offer_and_best_sorted():
    lst = CandidateList(3)
    lst.offer(subgraph(["b"], 2.0))
    lst.offer(subgraph(["a"], 1.0))
    lst.offer(subgraph(["c"], 3.0))
    assert [sg.cost for sg in lst.best()] == [1.0, 2.0, 3.0]


def test_kth_cost_infinite_until_k_candidates():
    lst = CandidateList(2)
    assert lst.kth_cost() == float("inf")
    lst.offer(subgraph(["a"], 1.0))
    assert lst.kth_cost() == float("inf")
    lst.offer(subgraph(["b"], 2.0))
    assert lst.kth_cost() == 2.0


def test_trim_to_k():
    lst = CandidateList(2)
    for i, name in enumerate(["a", "b", "c", "d"]):
        lst.offer(subgraph([name], float(i)))
    assert len(lst) == 2
    assert [sg.cost for sg in lst.best()] == [0.0, 1.0]


def test_duplicate_element_set_keeps_cheapest():
    lst = CandidateList(3)
    lst.offer(subgraph(["a", "b"], 5.0))
    assert lst.offer(subgraph(["a", "b"], 3.0)) is True
    assert len(lst) == 1
    assert lst.best()[0].cost == 3.0


def test_worse_duplicate_rejected():
    lst = CandidateList(3)
    lst.offer(subgraph(["a", "b"], 3.0))
    assert lst.offer(subgraph(["a", "b"], 5.0)) is False
    assert lst.best()[0].cost == 3.0


def test_should_terminate_strict():
    lst = CandidateList(1)
    lst.offer(subgraph(["a"], 2.0))
    assert not lst.should_terminate(2.0)  # strict comparison (Alg 2 line 11)
    assert lst.should_terminate(2.5)


def test_should_terminate_never_before_k():
    lst = CandidateList(5)
    lst.offer(subgraph(["a"], 1.0))
    assert not lst.should_terminate(float("inf")) or len(lst) >= 5


def test_rank_never_improves_for_survivors():
    # Trimmed-away candidates must not resurface above retained ones.
    lst = CandidateList(2)
    lst.offer(subgraph(["a"], 1.0))
    lst.offer(subgraph(["b"], 2.0))
    lst.offer(subgraph(["c"], 3.0))  # trimmed immediately
    lst.offer(subgraph(["c"], 3.0))  # re-offered; still outside top-2
    assert {tuple(sg.elements) for sg in lst.best()} == {("a",), ("b",)}


def test_offered_accepted_counters():
    lst = CandidateList(2)
    lst.offer(subgraph(["a"], 1.0))
    lst.offer(subgraph(["a"], 2.0))  # duplicate, worse
    assert lst.offered == 2
    assert lst.accepted == 1


def test_best_with_count():
    lst = CandidateList(5)
    for i, name in enumerate("abcde"):
        lst.offer(subgraph([name], float(i)))
    assert len(lst.best(2)) == 2
