"""Unit tests for the persistence layer: codec, bundle container, WAL."""

import json
import os
import struct

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF, XSD
from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.triples import Triple
from repro.scoring.cost import PopularityCost, make_cost_model
from repro.storage import (
    BundleChecksumError,
    BundleExistsError,
    BundleFormatError,
    DeltaLog,
    FORMAT_VERSION,
    MAGIC,
    UnsupportedEngineError,
    WalError,
    compact_bundle,
    load_bundle,
)
from repro.storage.codec import (
    Reader,
    TermInterner,
    decode_grouping,
    decode_raw_ids,
    decode_strings,
    decode_terms,
    encode_grouping,
    encode_ids,
    encode_raw_ids,
    encode_strings,
    encode_terms,
)


# ----------------------------------------------------------------------
# Codec primitives
# ----------------------------------------------------------------------


def test_ids_round_trip():
    values = [0, 1, -1, 2**62, -(2**62), 42]
    assert Reader(encode_ids(values)).ids() == values


def test_raw_ids_round_trip_and_alignment():
    values = [3, 1, 4, 1, 5, -9]
    blob = encode_raw_ids(values)
    assert len(blob) == 8 * len(values)
    assert list(decode_raw_ids(blob)) == values
    with pytest.raises(BundleFormatError):
        decode_raw_ids(blob[:-3])


def test_strings_round_trip():
    strings = ["", "plain", "ünï¢ode 🚀", "tab\tand\nnewline"]
    assert decode_strings(Reader(encode_strings(strings))) == strings


def test_grouping_round_trip_preserves_order():
    items = [(5, [1, 2, 3]), (2, []), (9, [7])]
    keys, offsets, values = decode_grouping(Reader(encode_grouping(iter(items))))
    assert keys == [5, 2, 9]
    assert [values[offsets[i] : offsets[i + 1]] for i in range(len(keys))] == [
        [1, 2, 3],
        [],
        [7],
    ]


def test_term_table_round_trip():
    terms = [
        URI("http://example.org/a"),
        BNode("b42"),
        Literal("plain"),
        Literal("2006", datatype=XSD.integer if hasattr(XSD, "integer") else URI("http://www.w3.org/2001/XMLSchema#integer")),
        Literal("héllo 🌍", language="en-GB"),
        Literal(""),
    ]
    interner = TermInterner()
    for term in terms:
        interner.id(term)
    decoded = decode_terms(encode_terms(interner.terms, interner.id))
    assert decoded == interner.terms
    # Datatype URIs are interned before their literals (single forward pass).
    for index, term in enumerate(decoded):
        if isinstance(term, Literal) and term.datatype is not None:
            assert decoded.index(term.datatype) < index


def test_term_table_rejects_unknown_kind():
    blob = struct.pack("<Q", 1) + bytes([99])
    with pytest.raises(BundleFormatError):
        decode_terms(blob)


# ----------------------------------------------------------------------
# Bundle container
# ----------------------------------------------------------------------


@pytest.fixture()
def small_engine(example_graph):
    return KeywordSearchEngine(DataGraph(example_graph.triples))


def test_save_refuses_overwrite(small_engine, tmp_path):
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    with pytest.raises(BundleExistsError):
        small_engine.save(path)
    small_engine.save(path, force=True)  # explicit force succeeds


def test_save_is_atomic_no_tmp_left_behind(small_engine, tmp_path):
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    assert os.listdir(tmp_path) == ["a.reprobundle"]


def test_load_rejects_bad_magic(tmp_path):
    path = tmp_path / "junk.reprobundle"
    path.write_bytes(b"NOTABNDL" + b"\x00" * 64)
    with pytest.raises(BundleFormatError):
        load_bundle(path)


def test_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.reprobundle"
    path.write_bytes(b"")
    with pytest.raises(BundleFormatError):
        load_bundle(path)


def test_load_rejects_future_format_version(small_engine, tmp_path):
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    data = bytearray(path.read_bytes())
    data[8:12] = struct.pack("<I", FORMAT_VERSION + 1)
    path.write_bytes(bytes(data))
    with pytest.raises(BundleFormatError) as excinfo:
        load_bundle(path)
    assert "format version" in str(excinfo.value)


def test_load_rejects_corrupted_section(small_engine, tmp_path):
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    data = bytearray(path.read_bytes())
    assert data[:8] == MAGIC
    # Flip a byte in the middle of a section the load always decodes
    # (the format-v2 tail sections are mmap-tier views a default load
    # never reads, so a blind flip at the end of the file would not be
    # seen by any CRC check).
    header_len = struct.unpack_from("<I", data, 12)[0]
    header = json.loads(bytes(data[16 : 16 + header_len]))
    base = 16 + header_len
    base += (-base) % 8
    entry = next(s for s in header["sections"] if s["name"] == "kindex.postings")
    data[base + entry["offset"] + entry["length"] // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(BundleChecksumError):
        load_bundle(path)


def test_save_refuses_custom_cost_model(example_graph, tmp_path):
    engine = KeywordSearchEngine(
        DataGraph(example_graph.triples),
        cost_model=PopularityCost(literal_normalization=True),
    )
    with pytest.raises(UnsupportedEngineError):
        engine.save(tmp_path / "a.reprobundle")


def test_save_accepts_every_stock_cost_model(example_graph, tmp_path):
    for name in ("c1", "c2", "c3", "pagerank"):
        engine = KeywordSearchEngine(
            DataGraph(example_graph.triples), cost_model=make_cost_model(name)
        )
        path = tmp_path / f"{name}.reprobundle"
        engine.save(path)
        loaded = KeywordSearchEngine.load(path)
        assert loaded.cost_model.name == name


def test_save_refuses_custom_lexicon(example_graph, tmp_path):
    from repro.keyword.keyword_index import KeywordIndex
    from repro.keyword.synonyms import SynonymLexicon

    graph = DataGraph(example_graph.triples)
    index = KeywordIndex(graph, lexicon=SynonymLexicon())
    engine = KeywordSearchEngine(graph, keyword_index=index)
    with pytest.raises(UnsupportedEngineError):
        engine.save(tmp_path / "a.reprobundle")


def test_load_overrides_engine_config(small_engine, tmp_path):
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    loaded = KeywordSearchEngine.load(path, k=3, guided=True, cost_model="c1")
    assert (loaded.k, loaded.guided, loaded.cost_model.name) == (3, True, "c1")
    with pytest.raises(TypeError):
        KeywordSearchEngine.load(path, no_such_option=1)


def test_engine_config_round_trips(example_graph, tmp_path):
    engine = KeywordSearchEngine(
        DataGraph(example_graph.triples),
        cost_model="c2",
        k=7,
        dmax=6,
        guided=True,
        strict_keywords=True,
        search_cache_size=32,
    )
    path = tmp_path / "a.reprobundle"
    engine.save(path)
    loaded = KeywordSearchEngine.load(path)
    assert loaded.cost_model.name == "c2"
    assert (loaded.k, loaded.dmax, loaded.guided, loaded.strict_keywords) == (7, 6, True, True)
    assert loaded._search_cache is not None and loaded._search_cache.maxsize == 32


def test_artifact_metadata(small_engine, tmp_path):
    assert small_engine.artifact is None
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    loaded = KeywordSearchEngine.load(path)
    artifact = loaded.artifact
    assert artifact["format_version"] == FORMAT_VERSION
    assert artifact["path"] == str(path)
    assert artifact["epoch_at_save"] == 0
    assert artifact["wal_epochs_replayed"] == 0
    assert artifact["load_seconds"] >= 0


def test_lazy_graph_serves_len_and_stats_without_materializing(
    small_engine, tmp_path
):
    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    loaded = KeywordSearchEngine.load(path)
    assert loaded.graph._lazy_thunk is not None
    assert len(loaded.graph) == len(small_engine.graph)
    assert loaded.graph.stats() == small_engine.graph.stats()
    assert len(loaded.store) == len(small_engine.store)
    assert loaded.graph._lazy_thunk is not None  # still unmaterialized
    loaded.search("cimiano 2006")
    assert loaded.graph._lazy_thunk is not None  # search never touches it
    # First execute materializes the store; first update the graph.
    loaded.execute(loaded.search("cimiano 2006").best())
    assert loaded.store._lazy_thunk is None


def test_substrate_is_mmap_backed(small_engine, tmp_path):
    import mmap as mmap_module

    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    loaded = KeywordSearchEngine.load(path)
    substrate = loaded.summary.exploration_substrate()
    assert isinstance(substrate.backing, mmap_module.mmap)
    fresh = small_engine.summary.exploration_substrate()
    assert list(substrate.offsets) == list(fresh.offsets)
    assert list(substrate.targets) == list(fresh.targets)
    assert substrate.keys == fresh.keys


def test_service_stats_expose_artifact(small_engine, tmp_path):
    from repro.service import EngineService

    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    loaded = KeywordSearchEngine.load(path)
    service = EngineService(loaded, workers=1)
    try:
        stats = service.stats()
        assert stats["artifact"]["format_version"] == FORMAT_VERSION
        assert stats["artifact"]["epoch_at_save"] == 0
    finally:
        service.close()
    # A built engine reports no artifact.
    service = EngineService(small_engine, workers=1)
    try:
        assert service.stats()["artifact"] is None
    finally:
        service.close()


# ----------------------------------------------------------------------
# Delta log
# ----------------------------------------------------------------------

_T1 = Triple(URI("ex:a"), URI("ex:p"), Literal("v\nwith newline"))
_T2 = Triple(URI("ex:a"), RDF.type, URI("ex:C"))
_T3 = Triple(URI("ex:b"), URI("ex:p"), Literal("2006"))


def test_wal_records_committed_entries(tmp_path):
    log = DeltaLog(tmp_path / "x.wal")
    log.record(0, [_T1, _T2], [])
    log.commit(1)
    log.record(1, [], [_T2])
    log.commit(2)
    log.close()
    entries = list(log.committed_entries())
    assert entries == [(0, [_T1, _T2], []), (1, [], [_T2])]


def test_wal_uncommitted_tail_is_ignored(tmp_path):
    log = DeltaLog(tmp_path / "x.wal")
    log.record(0, [_T1], [])
    log.commit(1)
    log.record(1, [_T3], [])  # crash before commit
    log.close()
    assert list(log.committed_entries()) == [(0, [_T1], [])]


def test_wal_failed_epoch_stays_uncommitted(tmp_path):
    log = DeltaLog(tmp_path / "x.wal")
    log.record(0, [_T1], [])
    log.commit(0)  # epoch did not advance: the batch failed
    log.close()
    assert list(log.committed_entries()) == []


def test_wal_torn_last_line_is_ignored(tmp_path):
    path = tmp_path / "x.wal"
    log = DeltaLog(path)
    log.record(0, [_T1], [])
    log.commit(1)
    log.close()
    with open(path, "a") as fh:
        fh.write(f"B 1\nA {_T3.n3()}")  # torn mid-entry, no C
    assert list(DeltaLog(path).committed_entries()) == [(0, [_T1], [])]


def test_wal_damaged_entry_is_uncommitted(tmp_path):
    """Body tampering breaks the entry's CRC: like a torn write, the
    entry is treated as never committed (classic WAL recovery)."""
    path = tmp_path / "x.wal"
    log = DeltaLog(path)
    log.record(0, [_T1], [])
    log.commit(1)
    log.close()
    text = path.read_text().replace(_T1.object.n3(), '"tampered"')
    path.write_text(text)
    assert list(DeltaLog(path).committed_entries()) == []


def test_wal_interior_damage_surfaces_as_epoch_gap(example_graph, tmp_path):
    """A damaged entry with intact successors is real history loss:
    replay must refuse with the gap error, never skip past it."""
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T1])
    live.add_triples([_T3])
    live.delta_log.close()
    wal = tmp_path / "a.reprobundle.wal"
    wal.write_text(wal.read_text().replace(_T1.object.n3(), '"tampered"'))
    with pytest.raises(WalError) as excinfo:
        KeywordSearchEngine.load(path)
    assert "gap" in str(excinfo.value)


def test_wal_garbage_lines_void_entries_not_the_log(tmp_path):
    path = tmp_path / "x.wal"
    path.write_text("# repro-wal 1\nWHAT 0\n")
    assert list(DeltaLog(path).committed_entries()) == []


def test_wal_foreign_header_refused(tmp_path):
    path = tmp_path / "x.wal"
    path.write_text("# repro-wal 99\nB 0\nC 0 00000000\n")
    with pytest.raises(WalError) as excinfo:
        list(DeltaLog(path).committed_entries())
    assert "header" in str(excinfo.value)


def test_wal_torn_commit_then_reattach_survives(example_graph, tmp_path):
    """Crash shape: a torn C line, then a new process appends the next
    epoch.  The torn entry is uncommitted; the appended one must still
    parse (the leading-newline guard keeps frames from fusing)."""
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T1])
    live.delta_log.close()
    wal = tmp_path / "a.reprobundle.wal"
    # Tear the commit line mid-write (strip trailing newline + crc tail).
    wal.write_bytes(wal.read_bytes()[:-6])
    restarted = KeywordSearchEngine.load(path)
    assert restarted.artifact["wal_epochs_replayed"] == 0  # entry uncommitted
    assert restarted.add_triples([_T1]) == 1  # re-applies as epoch 0
    restarted.delta_log.close()
    final = KeywordSearchEngine.load(path, attach_wal=False)
    assert final.index_manager.epoch == 1
    assert _T1 in set(final.graph.triples)


def test_corrupted_lazy_section_fails_on_first_touch(small_engine, tmp_path):
    """Graph/store sections are CRC-checked when they materialize; a
    corrupted byte there must raise the dedicated exception at first
    use, never decode silently wrong."""
    import json as json_module

    path = tmp_path / "a.reprobundle"
    small_engine.save(path)
    data = bytearray(path.read_bytes())
    (header_length,) = struct.unpack("<I", data[12:16])
    meta = json_module.loads(bytes(data[16 : 16 + header_length]))
    data_start = (16 + header_length) + (-(16 + header_length) % 8)
    entry = next(e for e in meta["sections"] if e["name"] == "store.spo")
    data[data_start + entry["offset"] + entry["length"] // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    loaded = KeywordSearchEngine.load(path)
    result = loaded.search("cimiano 2006")  # search never touches the store
    assert result.candidates
    with pytest.raises(BundleChecksumError):
        loaded.execute(result.best())


def test_commit_hooks_run_despite_earlier_hook_failure(example_graph):
    """A failing commit hook (e.g. WAL ENOSPC) must not skip later
    hooks — the serving layer's lock release rides on them."""
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    ran = []

    def bad_commit(epoch):
        ran.append("bad")
        raise OSError("disk full")

    def good_commit(epoch):
        ran.append("good")

    engine.index_manager.add_epoch_hooks(commit=bad_commit)
    engine.index_manager.add_epoch_hooks(commit=good_commit)
    with pytest.raises(OSError):
        engine.add_triples([_T3])
    assert ran == ["bad", "good"]
    assert _T3 in set(engine.graph.triples)  # the batch itself committed


def test_wal_epoch_gap_raises_on_replay(example_graph, tmp_path):
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    # Forge a log whose first committed entry skips an epoch.
    log = DeltaLog(f"{path}.wal")
    log.record(5, [_T3], [])
    log.commit(6)
    log.close()
    with pytest.raises(WalError) as excinfo:
        KeywordSearchEngine.load(path)
    assert "gap" in str(excinfo.value)


def test_wal_round_trips_tricky_literals(example_graph, tmp_path):
    """The WAL depends on exact N-Triples round trips — exercise them."""
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    tricky = [
        Triple(URI("ex:t"), URI("ex:p"), Literal('quote " backslash \\ tab\t')),
        Triple(URI("ex:t"), URI("ex:p"), Literal("line\nsep and")),
        Triple(URI("ex:t"), URI("ex:p"), Literal("héllo 🌍", language="en")),
        Triple(URI("ex:t"), URI("ex:p"), Literal("42", datatype=URI("ex:int"))),
    ]
    live = KeywordSearchEngine.load(path)
    live.add_triples(tricky)
    live.delta_log.close()  # release the single-writer lock
    reloaded = KeywordSearchEngine.load(path)
    assert set(tricky) <= set(reloaded.graph.triples)
    assert reloaded.index_manager.epoch == live.index_manager.epoch


def test_compact_folds_and_truncates(example_graph, tmp_path):
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T2, _T3])
    live.remove_triples([_T3])
    live.delta_log.close()  # compact refuses while an engine holds the log
    info = compact_bundle(path)
    assert info["wal_epochs_folded"] == 2
    assert info["epoch"] == 2
    # The log is empty again and the bundle carries the updates itself.
    assert list(DeltaLog(f"{path}.wal").committed_entries()) == []
    reloaded = KeywordSearchEngine.load(path)
    assert reloaded.artifact["wal_epochs_replayed"] == 0
    assert reloaded.index_manager.epoch == 2
    assert _T2 in set(reloaded.graph.triples)
    assert _T3 not in set(reloaded.graph.triples)


def test_load_rejects_truncated_prelude(tmp_path):
    """A torn copy that keeps the magic but loses the prelude must raise
    the dedicated exception, not a raw struct.error."""
    path = tmp_path / "torn.reprobundle"
    path.write_bytes(MAGIC + b"\x01")
    with pytest.raises(BundleFormatError):
        load_bundle(path)


def test_from_arrays_rejects_inconsistent_csr_sections():
    from repro.summary.substrate import ExplorationSubstrate

    pairs = [("'a'", "a"), ("'b'", "b")]
    with pytest.raises(ValueError):  # final offset overruns targets
        ExplorationSubstrate.from_arrays(pairs, [0, 1, 5], [1])
    with pytest.raises(ValueError):  # final offset truncates targets
        ExplorationSubstrate.from_arrays(pairs, [0, 0, 0], [1, 0])
    ok = ExplorationSubstrate.from_arrays(pairs, [0, 1, 2], [1, 0])
    assert list(ok.row(0)) == [1]


def test_attach_without_replay_refused_on_pending_tail(example_graph, tmp_path):
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T3])
    live.delta_log.close()
    # Attaching while skipping the committed tail would diverge the pair.
    with pytest.raises(WalError):
        KeywordSearchEngine.load(path, replay_wal=False, attach_wal=True)
    # Read-only inspection of the frozen bundle state stays possible.
    frozen = KeywordSearchEngine.load(path, replay_wal=False, attach_wal=False)
    assert frozen.index_manager.epoch == 0


def test_save_cleans_up_tmp_file_on_failure(small_engine, tmp_path, monkeypatch):
    import repro.storage.bundle as bundle_module

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(bundle_module.os, "replace", boom)
    with pytest.raises(OSError):
        small_engine.save(tmp_path / "a.reprobundle")
    assert os.listdir(tmp_path) == []


def test_wal_single_writer_enforced(example_graph, tmp_path):
    """Two engines attached to one log would interleave duplicate epochs
    and brick the artifact; the second attach must fail instead."""
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    first = KeywordSearchEngine.load(path)
    with pytest.raises(WalError) as excinfo:
        KeywordSearchEngine.load(path)
    assert "another engine" in str(excinfo.value)
    # Read-only loads coexist; releasing the lock frees the artifact.
    KeywordSearchEngine.load(path, attach_wal=False)
    first.delta_log.close()
    second = KeywordSearchEngine.load(path)
    assert second.delta_log is not None


def test_compact_refuses_while_attached(example_graph, tmp_path):
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T3])
    with pytest.raises(WalError):
        compact_bundle(path)
    live.delta_log.close()
    assert compact_bundle(path)["wal_epochs_folded"] == 1


def test_retired_wal_refuses_to_record(example_graph, tmp_path):
    """After a close() handover the old engine's record hook must fail
    loudly instead of appending unlocked duplicate epochs."""
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    old = KeywordSearchEngine.load(path)
    old.delta_log.close()
    new = KeywordSearchEngine.load(path)  # takes over the artifact
    with pytest.raises(WalError):
        old.add_triples([_T3])
    assert _T3 not in set(old.graph.triples)  # write-ahead: nothing mutated
    assert new.add_triples([_T3]) == 1  # the owner keeps working
    new.delta_log.close()
    reloaded = KeywordSearchEngine.load(path, attach_wal=False)
    assert reloaded.index_manager.epoch == 1


def test_rebuild_supersedes_stale_wal(example_graph, tmp_path):
    """`repro build --force` over an artifact must invalidate its old
    delta log — replaying another bundle's epochs would be the silently
    wrong engine the format forbids."""
    path = tmp_path / "a.reprobundle"
    graph_a = DataGraph(example_graph.triples)
    KeywordSearchEngine(graph_a).save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T3])  # committed epoch 0 in the WAL
    live.delta_log.close()

    graph_b = DataGraph(list(example_graph.triples)[:10])
    KeywordSearchEngine(graph_b).save(path, force=True)
    reloaded = KeywordSearchEngine.load(path)
    assert reloaded.artifact["wal_epochs_replayed"] == 0
    assert _T3 not in set(reloaded.graph.triples)
    assert reloaded.index_manager.epoch == 0


def test_rebuild_refused_while_wal_attached(example_graph, tmp_path):
    path = tmp_path / "a.reprobundle"
    engine = KeywordSearchEngine(DataGraph(example_graph.triples))
    engine.save(path)
    live = KeywordSearchEngine.load(path)
    live.add_triples([_T3])
    other = KeywordSearchEngine(DataGraph(example_graph.triples))
    with pytest.raises(WalError):  # the artifact is in use
        other.save(path, force=True)
    live.delta_log.close()
    other.save(path, force=True)  # free again after the handover
