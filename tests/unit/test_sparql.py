"""Unit tests for SPARQL rendering and parsing."""

import pytest

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.sparql import SparqlParseError, parse_sparql, to_sparql
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, URI, Variable

EX = Namespace("http://t/")
x, y = Variable("x"), Variable("y")


def test_render_compact():
    q = ConjunctiveQuery([Atom(EX.p, x, Literal("2006"))])
    assert to_sparql(q, pretty=False) == 'SELECT ?x WHERE { ?x <http://t/p> "2006" . }'


def test_render_pretty_multiline():
    q = ConjunctiveQuery([Atom(EX.p, x, y), Atom(EX.q, y, EX.c)])
    rendered = to_sparql(q)
    assert rendered.startswith("SELECT ?x ?y WHERE {")
    assert rendered.count(".") == 2


def test_parse_simple():
    q = parse_sparql('SELECT ?x WHERE { ?x <http://t/p> "v" . }')
    assert q.atoms == (Atom(URI("http://t/p"), x, Literal("v")),)
    assert q.distinguished == (x,)


def test_parse_star_selects_all(
):
    q = parse_sparql("SELECT * WHERE { ?x <http://t/p> ?y . }")
    assert q.distinguished == (x, y)


def test_parse_distinct_keyword_tolerated():
    q = parse_sparql("SELECT DISTINCT ?x WHERE { ?x <http://t/p> ?y . }")
    assert q.distinguished == (x,)


def test_parse_typed_literal():
    q = parse_sparql('SELECT ?x WHERE { ?x <p:a> "1"^^<x:int> . }')
    assert q.atoms[0].arg2 == Literal("1", datatype=URI("x:int"))


def test_parse_language_literal():
    q = parse_sparql('SELECT ?x WHERE { ?x <p:a> "chat"@fr . }')
    assert q.atoms[0].arg2 == Literal("chat", language="fr")


def test_parse_constant_subject():
    q = parse_sparql("SELECT ?y WHERE { <e:s> <p:a> ?y . }")
    assert q.atoms[0].arg1 == URI("e:s")


def test_round_trip(example_graph):
    from repro.rdf.namespace import RDF
    from repro.datasets.example import EX as AIFB

    original = ConjunctiveQuery(
        [
            Atom(RDF.type, x, AIFB.Publication),
            Atom(AIFB.year, x, Literal("2006")),
            Atom(AIFB.author, x, y),
        ],
        distinguished=[x],
    )
    parsed = parse_sparql(to_sparql(original))
    assert parsed == original


@pytest.mark.parametrize(
    "text",
    [
        "WHERE { ?x <p:a> ?y . }",  # missing SELECT
        "SELECT ?x { ?x <p:a> ?y . }",  # missing WHERE
        "SELECT ?x WHERE { ?x <p:a> ?y . ",  # unterminated block
        "SELECT ?x WHERE { }",  # empty pattern
        'SELECT ?x WHERE { ?x "lit" ?y . }',  # literal predicate
        "SELECT ?x WHERE { ?x <p:a> ?y . } trailing",
        "SELECT ?x WHERE { ?x <p:a> }",  # incomplete triple
    ],
)
def test_parse_errors(text):
    with pytest.raises(SparqlParseError):
        parse_sparql(text)
