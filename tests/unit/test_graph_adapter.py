"""Unit tests for the baselines' entity-graph view."""

import pytest

from repro.baselines.graph_adapter import EntityGraphView
from repro.datasets.example import EX


@pytest.fixture(scope="module")
def view(example_graph):
    return EntityGraphView(example_graph)


def test_nodes_cover_entities_and_classes(view, example_graph):
    expected = len(example_graph.entities) + len(example_graph.classes)
    assert view.node_count == expected


def test_keyword_matches_attribute_value(view):
    nodes = view.keyword_nodes("aifb")
    assert len(nodes) == 1
    assert view.term_of(next(iter(nodes))) == EX.inst1URI


def test_keyword_matches_class_label(view):
    nodes = view.keyword_nodes("publication")
    labels = {view.label_of(n) for n in nodes}
    assert "Publication" in labels


def test_multi_term_keyword_must_fully_match(view):
    assert view.keyword_nodes("cimiano") != frozenset()
    assert view.keyword_nodes("cimiano aifb") == frozenset()


def test_unknown_keyword(view):
    assert view.keyword_nodes("zzznothing") == frozenset()


def test_directed_edges(view, example_graph):
    pub1 = next(n for n in range(view.node_count) if view.term_of(n) == EX.pub1URI)
    out_targets = {view.term_of(t) for t, _ in view.out_edges(pub1)}
    assert EX.re1URI in out_targets
    assert EX.re2URI in out_targets
    in_sources = {view.term_of(s) for s, _ in view.in_edges(pub1)}
    assert in_sources == set()  # nothing points at pub1 via R-edges


def test_type_edges_connect_to_classes(view):
    pub1 = next(n for n in range(view.node_count) if view.term_of(n) == EX.pub1URI)
    out_targets = {view.term_of(t) for t, _ in view.out_edges(pub1)}
    assert EX.Publication in out_targets


def test_undirected_neighbors_union(view):
    re1 = next(n for n in range(view.node_count) if view.term_of(n) == EX.re1URI)
    neighbors = {view.term_of(t) for t, _ in view.undirected_neighbors(re1)}
    assert EX.pub1URI in neighbors  # incoming author edge
    assert EX.inst1URI in neighbors  # outgoing worksAt edge


def test_keyword_nodes_all(view):
    sets = view.keyword_nodes_all(["aifb", "cimiano"])
    assert len(sets) == 2
    assert all(sets)
