"""Unit tests for the Triple value object."""

import pytest

from repro.rdf.terms import BNode, Literal, URI, Variable
from repro.rdf.triples import Triple


def test_construction_and_accessors():
    t = Triple(URI("e:s"), URI("e:p"), Literal("v"))
    assert t.subject == URI("e:s")
    assert t.predicate == URI("e:p")
    assert t.object == Literal("v")


def test_unpacking():
    s, p, o = Triple(URI("e:s"), URI("e:p"), URI("e:o"))
    assert (s, p, o) == (URI("e:s"), URI("e:p"), URI("e:o"))


def test_bnode_subject_allowed():
    t = Triple(BNode("b"), URI("e:p"), URI("e:o"))
    assert t.subject == BNode("b")


def test_literal_subject_rejected():
    with pytest.raises(TypeError):
        Triple(Literal("x"), URI("e:p"), URI("e:o"))


def test_non_uri_predicate_rejected():
    with pytest.raises(TypeError):
        Triple(URI("e:s"), Literal("p"), URI("e:o"))
    with pytest.raises(TypeError):
        Triple(URI("e:s"), BNode("p"), URI("e:o"))


def test_variable_not_allowed_in_data_triple():
    with pytest.raises(TypeError):
        Triple(URI("e:s"), URI("e:p"), Variable("x"))


def test_equality_and_hash():
    a = Triple(URI("e:s"), URI("e:p"), Literal("v"))
    b = Triple(URI("e:s"), URI("e:p"), Literal("v"))
    c = Triple(URI("e:s"), URI("e:p"), Literal("w"))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_immutable():
    t = Triple(URI("e:s"), URI("e:p"), URI("e:o"))
    with pytest.raises(AttributeError):
        t.subject = URI("e:x")


def test_n3_line():
    t = Triple(URI("e:s"), URI("e:p"), Literal("v"))
    assert t.n3() == '<e:s> <e:p> "v" .'
