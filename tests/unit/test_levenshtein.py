"""Unit tests for the Levenshtein distance and similarity."""

import pytest

from repro.keyword.levenshtein import levenshtein, similarity, within_distance


@pytest.mark.parametrize(
    "a,b,d",
    [
        ("", "", 0),
        ("a", "", 1),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("cimiano", "cimiano", 0),
        ("cimiano", "cimano", 1),
        ("icde", "icdt", 1),
        ("abc", "cba", 2),
        ("book", "back", 2),
    ],
)
def test_known_distances(a, b, d):
    assert levenshtein(a, b) == d
    assert levenshtein(b, a) == d  # symmetric


def test_bounded_early_exit_returns_bound_plus_one():
    assert levenshtein("completely", "different", max_distance=2) == 3


def test_bounded_exact_when_within():
    assert levenshtein("cimiano", "cimano", max_distance=2) == 1


def test_length_difference_shortcut():
    assert levenshtein("ab", "abcdefgh", max_distance=3) == 4


def test_within_distance():
    assert within_distance("icde", "icdt", 1)
    assert not within_distance("icde", "sigmod", 2)


def test_similarity_identical():
    assert similarity("graph", "graph") == 1.0


def test_similarity_empty_strings():
    assert similarity("", "") == 1.0


def test_similarity_range():
    s = similarity("cimiano", "cimano")
    assert 0.0 < s < 1.0
    assert s == pytest.approx(1 - 1 / 7)


def test_similarity_disjoint():
    assert similarity("ab", "xy") == 0.0
