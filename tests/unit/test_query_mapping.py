"""Unit tests for the subgraph → conjunctive query mapping (Section VI-D)."""

import pytest

from repro.core.query_mapping import QueryMappingError, map_to_query
from repro.core.subgraph import MatchingSubgraph
from repro.datasets.example import EX
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI, Variable
from repro.summary.elements import SummaryEdgeKind, THING_KEY
from repro.summary.summary_graph import SummaryGraph

_SUBCLASS = URI("http://www.w3.org/2000/01/rdf-schema#subClassOf")


def build_graph():
    """A small augmented summary graph with every edge kind."""
    graph = SummaryGraph()
    pub = graph.add_class_vertex(EX.Publication, agg_count=2).key
    res = graph.add_class_vertex(EX.Researcher, agg_count=2).key
    person = graph.add_class_vertex(EX.Person).key
    thing = graph.ensure_thing(agg_count=1).key
    value = graph.add_value_vertex(Literal("2006")).key
    artificial = graph.add_artificial_value_vertex(EX.name).key

    author = graph.add_edge(EX.author, SummaryEdgeKind.RELATION, pub, res).key
    year = graph.add_edge(EX.year, SummaryEdgeKind.ATTRIBUTE, pub, value).key
    name = graph.add_edge(EX.name, SummaryEdgeKind.ATTRIBUTE, res, artificial).key
    subclass = graph.add_edge(_SUBCLASS, SummaryEdgeKind.SUBCLASS, res, person).key
    thing_rel = graph.add_edge(EX.knows, SummaryEdgeKind.RELATION, res, thing).key
    loop = graph.add_edge(EX.cites, SummaryEdgeKind.RELATION, pub, pub).key
    return graph, {
        "pub": pub, "res": res, "person": person, "thing": thing,
        "value": value, "artificial": artificial, "author": author,
        "year": year, "name": name, "subclass": subclass,
        "thing_rel": thing_rel, "loop": loop,
    }


def single_path_subgraph(elements, connecting=None):
    return MatchingSubgraph(connecting or elements[0], [list(elements)], 1.0)


def atom_signature(query):
    return {(a.predicate, not isinstance(a.arg1, Variable), a.arg2 if not isinstance(a.arg2, Variable) else None)
            for a in query.atoms}


class TestAttributeEdges:
    def test_value_edge_maps_to_type_plus_constant_atom(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"], k["year"], k["value"]])
        query = map_to_query(sg, graph)
        predicates = {(a.predicate, a.arg2) for a in query.atoms}
        assert (RDF.type, EX.Publication) in predicates
        assert (EX.year, Literal("2006")) in predicates
        assert len(query.atoms) == 2

    def test_artificial_edge_maps_to_variable_object(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["res"], k["name"], k["artificial"]])
        query = map_to_query(sg, graph)
        name_atom = next(a for a in query.atoms if a.predicate == EX.name)
        assert isinstance(name_atom.arg2, Variable)


class TestRelationEdges:
    def test_relation_emits_both_type_atoms(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"], k["author"], k["res"]])
        query = map_to_query(sg, graph)
        type_constants = {a.arg2 for a in query.atoms if a.predicate == RDF.type}
        assert type_constants == {EX.Publication, EX.Researcher}
        author_atom = next(a for a in query.atoms if a.predicate == EX.author)
        assert isinstance(author_atom.arg1, Variable)
        assert isinstance(author_atom.arg2, Variable)
        assert author_atom.arg1 != author_atom.arg2

    def test_thing_vertex_gets_no_type_atom(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["res"], k["thing_rel"], k["thing"]])
        query = map_to_query(sg, graph)
        type_constants = {a.arg2 for a in query.atoms if a.predicate == RDF.type}
        assert type_constants == {EX.Researcher}

    def test_self_loop_gets_fresh_target_variable(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"], k["loop"]])
        query = map_to_query(sg, graph)
        cites = next(a for a in query.atoms if a.predicate == EX.cites)
        assert cites.arg1 != cites.arg2  # not cites(?x, ?x)
        # Both ends still typed Publication.
        type_vars = {
            a.arg1 for a in query.atoms
            if a.predicate == RDF.type and a.arg2 == EX.Publication
        }
        assert {cites.arg1, cites.arg2} == type_vars


class TestSubclassEdges:
    def test_subclass_maps_to_ground_atom(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["res"], k["subclass"], k["person"]])
        query = map_to_query(sg, graph, subclass_predicate=_SUBCLASS)
        subclass_atom = next(a for a in query.atoms if a.predicate == _SUBCLASS)
        assert subclass_atom.arg1 == EX.Researcher
        assert subclass_atom.arg2 == EX.Person


class TestIsolatedVertices:
    def test_isolated_class_vertex(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"]])
        query = map_to_query(sg, graph)
        assert len(query.atoms) == 1
        assert query.atoms[0].predicate == RDF.type
        assert query.atoms[0].arg2 == EX.Publication

    def test_isolated_value_vertex_anchored_through_incident_edge(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["value"]])
        query = map_to_query(sg, graph)
        predicates = {a.predicate for a in query.atoms}
        assert EX.year in predicates
        assert RDF.type in predicates

    def test_isolated_thing_fails(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["thing"]])
        with pytest.raises(QueryMappingError):
            map_to_query(sg, graph)

    def test_dangling_value_vertex_fails(self):
        graph = SummaryGraph()
        orphan = graph.add_value_vertex(Literal("x")).key
        sg = single_path_subgraph([orphan])
        with pytest.raises(QueryMappingError):
            map_to_query(sg, graph)


class TestGeneral:
    def test_custom_type_predicate(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"]])
        query = map_to_query(sg, graph, type_predicate=URI("type"))
        assert query.atoms[0].predicate == URI("type")

    def test_deterministic_output(self):
        graph, k = build_graph()
        sg = MatchingSubgraph(
            k["res"],
            [
                [k["value"], k["year"], k["pub"], k["author"], k["res"]],
                [k["artificial"], k["name"], k["res"]],
            ],
            5.0,
        )
        q1 = map_to_query(sg, graph)
        q2 = map_to_query(sg, graph)
        assert q1 == q2

    def test_all_variables_distinguished_by_default(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"], k["author"], k["res"]])
        query = map_to_query(sg, graph)
        assert set(query.distinguished) == set(query.variables)

    def test_explicit_projection(self):
        graph, k = build_graph()
        sg = single_path_subgraph([k["pub"], k["year"], k["value"]])
        full = map_to_query(sg, graph)
        projected = map_to_query(sg, graph, distinguished=[full.variables[0]])
        assert len(projected.distinguished) == 1

    def test_connected_subgraph_yields_connected_query(self):
        graph, k = build_graph()
        sg = MatchingSubgraph(
            k["res"],
            [
                [k["value"], k["year"], k["pub"], k["author"], k["res"]],
                [k["artificial"], k["name"], k["res"]],
            ],
            5.0,
        )
        assert map_to_query(sg, graph).is_connected()
