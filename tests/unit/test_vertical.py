"""Unit + differential tests for the vertically partitioned store."""

import pytest

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore
from repro.store.vertical import VerticalStore

EX = Namespace("http://t/")

TRIPLES = [
    Triple(EX.a, EX.p, EX.b),
    Triple(EX.a, EX.p, EX.c),
    Triple(EX.b, EX.p, EX.c),
    Triple(EX.a, EX.q, EX.b),
    Triple(EX.b, EX.r, Literal("v")),
]


@pytest.fixture
def store():
    return VerticalStore(TRIPLES)


def test_len_and_contains(store):
    assert len(store) == 5
    assert Triple(EX.a, EX.p, EX.b) in store
    assert Triple(EX.a, EX.p, EX.z) not in store


def test_duplicates_collapse():
    store = VerticalStore(TRIPLES + TRIPLES)
    assert len(store) == 5


def test_one_table_per_predicate(store):
    assert set(store.predicates) == {EX.p, EX.q, EX.r}
    assert store.predicate_cardinality(EX.p) == 3
    assert store.predicate_cardinality(EX.z) == 0


@pytest.mark.parametrize(
    "pattern",
    [
        (None, None, None),
        (EX.a, None, None),
        (None, EX.p, None),
        (None, None, EX.b),
        (EX.a, EX.p, None),
        (None, EX.p, EX.c),
        (EX.a, None, EX.b),
        (EX.a, EX.p, EX.b),
        (EX.z, EX.p, None),
        (None, EX.z, None),
    ],
)
def test_differential_against_triple_store(store, pattern):
    """Both backends answer every access pattern identically."""
    reference = TripleStore(TRIPLES)
    assert set(store.match(*pattern)) == set(reference.match(*pattern))
    assert store.count(*pattern) == reference.count(*pattern)


def test_subjects_objects(store):
    assert set(store.subjects(EX.p, EX.c)) == {EX.a, EX.b}
    assert set(store.objects(EX.a, EX.p)) == {EX.b, EX.c}


def test_literal_subject_pattern_matches_nothing(store):
    assert list(store.match(Literal("v"), EX.p, None)) == []


def test_incremental_insert_after_query(store):
    assert store.count(None, EX.p, None) == 3
    store.add(Triple(EX.c, EX.p, EX.a))
    assert store.count(None, EX.p, None) == 4
    assert Triple(EX.c, EX.p, EX.a) in store


def test_evaluator_runs_on_vertical_store(example_graph):
    """The join evaluator is backend-agnostic: Fig. 1c evaluates identically
    on the vertical layout."""
    from repro.query.evaluator import QueryEvaluator
    from tests.unit.test_evaluator import fig1c_query

    vertical = VerticalStore(example_graph)
    spo = TripleStore.from_graph(example_graph)
    a1 = {a.values for a in QueryEvaluator(vertical).evaluate(fig1c_query())}
    a2 = {a.values for a in QueryEvaluator(spo).evaluate(fig1c_query())}
    assert a1 == a2 and len(a1) == 1
