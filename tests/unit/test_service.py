"""Unit tests for the serving layer (`repro.service`).

The acceptance bar: `EngineService.search_many` returns results
byte-identical to sequential `engine.search` calls on the same snapshot;
admission control and per-query deadlines behave as documented; epoch
hooks and listener ordering on the IndexManager hold.
"""

import threading

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.service import AdmissionError, EngineService


def _render(result):
    """A byte-comparable rendering of a SearchResult."""
    return (
        tuple(result.keywords),
        tuple(result.ignored_keywords),
        tuple((c.rank, c.cost, str(c.query), c.to_sparql()) for c in result.candidates),
    )


@pytest.fixture()
def engine(example_graph):
    # Fresh graph per test: the update tests mutate it, and the
    # session-scoped fixture is shared with the whole suite.
    from repro.rdf.graph import DataGraph

    return KeywordSearchEngine(DataGraph(example_graph.triples), k=5)


@pytest.fixture()
def service(engine):
    svc = EngineService(engine, workers=4)
    yield svc
    svc.close()


QUERIES = ["cimiano 2006", "aifb", "2006 article", "cimiano 2006", "publication"]


class TestSearchMany:
    def test_byte_identical_to_sequential(self, engine, service):
        snapshot = engine.snapshot()
        expected = [
            _render(engine.search_on_snapshot(snapshot, q)) for q in QUERIES
        ]
        outcomes = service.search_many(QUERIES)
        assert [o.status for o in outcomes] == ["ok"] * len(QUERIES)
        assert [o.index for o in outcomes] == list(range(len(QUERIES)))
        assert [_render(o.result) for o in outcomes] == expected

    def test_single_search_matches_engine(self, engine, service):
        assert _render(service.search("cimiano 2006")) == _render(
            engine.search("cimiano 2006")
        )

    def test_empty_batch(self, service):
        assert service.search_many([]) == []

    def test_per_query_error_isolated(self, service):
        outcomes = service.search_many(["cimiano", "   "])
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "error"
        assert isinstance(outcomes[1].error, ValueError)

    def test_expired_deadline_skips_dispatch(self, service):
        outcomes = service.search_many(QUERIES, timeout=0.0)
        assert {o.status for o in outcomes} == {"timeout"}
        assert all(o.result is None for o in outcomes)


class TestAdmissionControl:
    def test_batch_beyond_bound_rejected(self, engine):
        svc = EngineService(engine, workers=2, max_pending=3)
        try:
            with pytest.raises(AdmissionError):
                svc.search_many(QUERIES)  # 5 > 3
            # The failed admission released its slots: smaller batches pass.
            assert all(o.ok for o in svc.search_many(QUERIES[:3]))
        finally:
            svc.close()

    def test_rejections_counted(self, engine):
        svc = EngineService(engine, workers=2, max_pending=1)
        try:
            with pytest.raises(AdmissionError):
                svc.search_many(QUERIES[:2])
            assert svc.stats()["queries"]["rejected"] == 2
        finally:
            svc.close()


class TestQueueWait:
    """max_queue_wait bounds waiting separately from execution."""

    def test_histogram_surfaced_in_stats(self, service):
        for q in QUERIES:
            service.search(q)
        queries = service.stats()["queries"]
        assert queries["queue_wait_p50_ms"] >= 0
        assert queries["queue_wait_p99_ms"] >= queries["queue_wait_p50_ms"]
        assert queries["queue_wait_max_ms"] >= queries["queue_wait_p99_ms"]

    def test_search_rejected_behind_a_writer(self, engine):
        svc = EngineService(engine, workers=2, max_queue_wait=0.05)
        try:
            svc._rw.acquire_write()  # an update epoch hogging the engine
            try:
                with pytest.raises(AdmissionError):
                    svc.search("cimiano 2006")
            finally:
                svc._rw.release_write()
            assert svc.stats()["queries"]["rejected"] == 1
            # Once the writer is gone, the same search is admitted.
            assert svc.search("cimiano 2006") is not None
        finally:
            svc.close()

    def test_pool_queue_wait_sheds_without_execution(self, engine):
        import time as _time

        real = engine.search_on_snapshot
        calls = []

        def slow(snapshot, query, **kwargs):
            calls.append(query)
            if query == "cimiano 2006":
                _time.sleep(0.3)
            return real(snapshot, query, **kwargs)

        engine.search_on_snapshot = slow
        svc = EngineService(engine, workers=1, max_queue_wait=0.05)
        try:
            outcomes = svc.search_many(["cimiano 2006", "aifb"])
            assert outcomes[0].ok
            # The second query waited > max_queue_wait behind the slow
            # first one and was shed from the queue without executing.
            assert outcomes[1].status == "timeout"
            assert "aifb" not in calls
            queries = svc.stats()["queries"]
            assert queries["timeouts"] == 1
            assert queries["queue_wait_max_ms"] >= 50
        finally:
            svc.close()

    def test_unbounded_by_default(self, engine):
        svc = EngineService(engine, workers=4)
        try:
            assert svc.max_queue_wait is None
            assert all(o.ok for o in svc.search_many(QUERIES))
        finally:
            svc.close()


class TestUpdates:
    def test_update_visible_to_later_searches(self, engine, service):
        before = service.search("zzznewthing")
        assert not before.candidates
        pub = URI("http://example.org/pubNew")
        label = URI("http://www.w3.org/2000/01/rdf-schema#label")
        report = service.update(
            adds=[Triple(pub, label, Literal("zzznewthing"))]
        )
        assert report["changed"] == 1
        assert report["epoch"] == engine.index_manager.epoch
        after = service.search("zzznewthing")
        assert after.keywords == ["zzznewthing"]
        assert not after.ignored_keywords

    def test_direct_engine_update_also_serialized(self, engine, service):
        """add_triples bypassing the service still runs inside an epoch:
        the hook-held write lock must be released afterwards (a stuck lock
        would hang this test's subsequent search)."""
        pub = URI("http://example.org/pubDirect")
        label = URI("http://www.w3.org/2000/01/rdf-schema#label")
        engine.add_triples([Triple(pub, label, Literal("directupdate"))])
        assert service.search("directupdate").keywords == ["directupdate"]
        assert service.stats()["queries"]["updates"] == 1

    def test_concurrent_searches_during_update(self, engine, service):
        """A writer racing a stream of readers: everything completes and
        every result is internally consistent (no exception, no hang)."""
        pub = URI("http://example.org/pubRace")
        label = URI("http://www.w3.org/2000/01/rdf-schema#label")
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    service.search("cimiano 2006")
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(5):
                service.update(adds=[Triple(pub, label, Literal(f"race {i}"))])
        finally:
            stop.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "reader wedged against the writer"
        assert failures == []
        assert service.stats()["queries"]["updates"] == 5


class TestStats:
    def test_counters_and_percentiles(self, service):
        for q in QUERIES:
            service.search(q)
        stats = service.stats()
        assert stats["queries"]["completed"] == len(QUERIES)
        assert stats["queries"]["qps"] > 0
        assert stats["queries"]["p50_ms"] >= 0
        assert stats["queries"]["p99_ms"] >= stats["queries"]["p50_ms"]
        assert stats["queries"]["inflight"] == 0
        assert "keyword_lookups" in stats["caches"]
        assert stats["snapshot"]["epoch"] == 0
        assert stats["data"]["triples"] > 0

    def test_search_cache_rates_reported(self, example_graph):
        engine = KeywordSearchEngine(example_graph, k=5, search_cache_size=8)
        svc = EngineService(engine, workers=2)
        try:
            svc.search("cimiano 2006")
            svc.search("cimiano 2006")
            cache = svc.stats()["caches"]["search_results"]
            assert cache["hits"] == 1
            assert cache["misses"] == 1
        finally:
            svc.close()


class TestSnapshot:
    def test_snapshot_pins_versions(self, engine):
        snap = engine.snapshot()
        assert snap.key == (
            engine.summary.snapshot_key,
            engine.keyword_index.snapshot_key,
        )
        assert snap.is_current()
        pub = URI("http://example.org/pubSnap")
        label = URI("http://www.w3.org/2000/01/rdf-schema#label")
        engine.add_triples([Triple(pub, label, Literal("snapshotted"))])
        assert not snap.is_current()
        assert engine.snapshot().is_current()

    def test_substrate_pinned_eagerly(self, engine):
        snap = engine.snapshot()
        assert snap.substrate is engine.summary.exploration_substrate()


class TestEpochHooks:
    def test_begin_commit_bracket_the_batch(self, engine):
        events = []
        engine.index_manager.add_epoch_hooks(
            begin=lambda epoch: events.append(("begin", epoch)),
            commit=lambda epoch: events.append(("commit", epoch)),
        )
        pub = URI("http://example.org/pubHook")
        label = URI("http://www.w3.org/2000/01/rdf-schema#label")
        engine.add_triples([Triple(pub, label, Literal("hooked"))])
        assert events == [("begin", 0), ("commit", 1)]
        # A no-op batch still brackets but does not advance the epoch.
        engine.add_triples([])
        assert events == [("begin", 0), ("commit", 1), ("begin", 1), ("commit", 1)]

    def test_commit_runs_on_failure(self, example_graph):
        from repro.rdf.graph import DataGraph, GraphIntegrityError

        # A strict graph rejects Definition 1 violations mid-batch; the
        # commit hook must still run (a lock-holding hook pair would
        # otherwise deadlock every later update).
        engine = KeywordSearchEngine(DataGraph(example_graph.triples, strict=True))
        events = []
        engine.index_manager.add_epoch_hooks(
            begin=lambda epoch: events.append("begin"),
            commit=lambda epoch: events.append("commit"),
        )
        type_pred = engine.graph.preferred_type_predicate
        with pytest.raises(GraphIntegrityError):
            engine.add_triples(
                [Triple(URI("http://example.org/e"), type_pred, Literal("v"))]
            )
        assert events == ["begin", "commit"]
        assert engine.index_manager.epoch == 0

    def test_aborted_batch_not_counted_as_update(self, example_graph):
        from repro.rdf.graph import DataGraph, GraphIntegrityError

        engine = KeywordSearchEngine(DataGraph(example_graph.triples, strict=True))
        svc = EngineService(engine, workers=1)
        try:
            type_pred = engine.graph.preferred_type_predicate
            with pytest.raises(GraphIntegrityError):
                svc.update(
                    adds=[Triple(URI("http://example.org/e"), type_pred, Literal("v"))]
                )
            assert svc.stats()["queries"]["updates"] == 0
            # The write lock was released: a later search completes.
            assert svc.search("cimiano").keywords == ["cimiano"]
        finally:
            svc.close()

    def test_listener_priority_order(self, engine):
        order = []
        engine.index_manager.add_listener(lambda: order.append("late"), priority=10)
        engine.index_manager.add_listener(lambda: order.append("early"), priority=-1)
        engine.index_manager.add_listener(lambda: order.append("mid"))
        pub = URI("http://example.org/pubOrder")
        label = URI("http://www.w3.org/2000/01/rdf-schema#label")
        engine.add_triples([Triple(pub, label, Literal("ordered"))])
        assert order == ["early", "mid", "late"]
