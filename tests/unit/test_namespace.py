"""Unit tests for namespaces and the standard vocabulary helpers."""

import pytest

from repro.rdf.namespace import (
    Namespace,
    RDF,
    RDFS,
    SUBCLASS_PREDICATES,
    TYPE_PREDICATES,
    local_name,
)
from repro.rdf.terms import URI


def test_attribute_minting():
    ex = Namespace("http://e/")
    assert ex.Person == URI("http://e/Person")


def test_item_minting_allows_arbitrary_names():
    ex = Namespace("http://e/")
    assert ex["has name"] == URI("http://e/has name")


def test_contains():
    ex = Namespace("http://e/")
    assert ex.Person in ex
    assert URI("http://other/x") not in ex


def test_private_attribute_raises():
    ex = Namespace("http://e/")
    with pytest.raises(AttributeError):
        ex._hidden


def test_rdf_type_recognized():
    assert RDF.type in TYPE_PREDICATES
    assert URI("type") in TYPE_PREDICATES


def test_rdfs_subclass_recognized():
    assert RDFS.subClassOf in SUBCLASS_PREDICATES
    assert URI("subclass") in SUBCLASS_PREDICATES


@pytest.mark.parametrize(
    "uri,expected",
    [
        ("http://example.org/ontology#worksAt", "worksAt"),
        ("http://example.org/Person", "Person"),
        ("urn:isbn:12345", "12345"),
        ("simple", "simple"),
        ("http://example.org/path/", "path"),
    ],
)
def test_local_name(uri, expected):
    assert local_name(URI(uri)) == expected
