"""Unit tests for the exploration cursor."""

import pytest

from repro.core.cursor import Cursor


def test_origin_cursor():
    c = Cursor.origin_cursor("A", keyword=0, cost=0.5)
    assert c.element == "A"
    assert c.keyword == 0
    assert c.origin == "A"
    assert c.parent is None
    assert c.distance == 0
    assert c.cost == 0.5


def test_expand_accumulates_cost_and_distance():
    origin = Cursor.origin_cursor("A", 0, 1.0)
    child = origin.expand("B", 0.25)
    assert child.element == "B"
    assert child.parent is origin
    assert child.distance == 1
    assert child.cost == 1.25
    assert child.origin == "A"
    assert child.keyword == 0


def test_path_in_origin_first_order():
    c = Cursor.origin_cursor("A", 0, 1.0).expand("e1", 1.0).expand("B", 1.0)
    assert c.path() == ["A", "e1", "B"]


def test_visits():
    c = Cursor.origin_cursor("A", 0, 1.0).expand("e1", 1.0).expand("B", 1.0)
    assert c.visits("A")
    assert c.visits("e1")
    assert c.visits("B")
    assert not c.visits("C")


def test_path_elements_set():
    c = Cursor.origin_cursor("A", 0, 1.0).expand("e1", 1.0)
    assert c.path_elements() == frozenset({"A", "e1"})


def test_parent_element():
    origin = Cursor.origin_cursor("A", 0, 1.0)
    assert origin.parent_element is None
    assert origin.expand("B", 1.0).parent_element == "A"


def test_len_counts_elements():
    c = Cursor.origin_cursor("A", 0, 1.0).expand("B", 1.0)
    assert len(c) == 2


def test_immutable():
    c = Cursor.origin_cursor("A", 0, 1.0)
    with pytest.raises(AttributeError):
        c.cost = 0.0


def test_shared_parent_not_copied():
    origin = Cursor.origin_cursor("A", 0, 1.0)
    c1 = origin.expand("B", 1.0)
    c2 = origin.expand("C", 1.0)
    assert c1.parent is c2.parent is origin
