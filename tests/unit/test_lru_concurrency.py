"""Thread-safety stress test for the shared LRU memo (`repro.util.LruDict`).

The serving layer hammers one LruDict from a worker pool (search-result
memo, keyword-lookup memo) while maintenance clears it, so the contract
is: no internal exception ever escapes `hit`/`put`/`clear`, and the size
bound holds whenever the dict is quiescent.
"""

import random
import threading

from repro.util import LruDict

THREADS = 8
OPS_PER_THREAD = 4000
MAXSIZE = 8
KEYSPACE = 32


def _hammer(cache, seed, failures, barrier):
    rng = random.Random(seed)
    barrier.wait()
    try:
        for i in range(OPS_PER_THREAD):
            key = rng.randrange(KEYSPACE)
            op = rng.random()
            if op < 0.45:
                cache.hit(key)
            elif op < 0.97:
                cache.put(key, key + 1)
            else:
                cache.clear()
    except BaseException as exc:  # noqa: BLE001 - the assertion target
        failures.append(exc)


def test_concurrent_hit_put_clear_never_raises_and_size_bounded():
    cache = LruDict(MAXSIZE)
    failures = []
    barrier = threading.Barrier(THREADS)
    threads = [
        threading.Thread(
            target=_hammer, args=(cache, seed, failures, barrier), daemon=True
        )
        for seed in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "stress thread wedged (deadlock?)"

    assert failures == []
    assert len(cache) <= MAXSIZE
    # The cache still works after the storm.
    cache.put("after", "storm")
    assert cache.hit("after") == "storm"
    assert len(cache) <= MAXSIZE


def test_counters_and_stats_shape():
    cache = LruDict(2)
    assert cache.hit("missing") is None
    cache.put("a", 1)
    assert cache.hit("a") == 1
    stats = cache.cache_stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["maxsize"] == 2
    assert stats["size"] == 1


def test_eviction_order_unchanged():
    cache = LruDict(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.hit("a")  # refresh: "b" is now the eviction victim
    cache.put("c", 3)
    assert cache.hit("b") is None
    assert cache.hit("a") == 1
    assert cache.hit("c") == 3
