"""Hand-computed values for the ranking metrics (repro.quality.metrics)."""

import math

import pytest

from repro.quality.metrics import (
    dcg_at_k,
    dedupe_ranked,
    mean_of,
    ndcg_at_k,
    recall_at_k,
    reciprocal_rank_graded,
)

REL = {"a": 3.0, "b": 2.0, "c": 1.0}


class TestRecallAtK:
    def test_all_found_within_k(self):
        assert recall_at_k(["a", "b", "c"], REL, 3) == 1.0

    def test_partial(self):
        # Only "a" of the three relevant items is in the top 1.
        assert recall_at_k(["a", "x", "y"], REL, 1) == pytest.approx(1 / 3)

    def test_cutoff_excludes_late_hits(self):
        # "c" sits at rank 4 > k=3: two of three relevant found.
        assert recall_at_k(["a", "x", "b", "c"], REL, 3) == pytest.approx(2 / 3)

    def test_empty_results_score_zero(self):
        assert recall_at_k([], REL, 5) == 0.0

    def test_missing_goldens_undefined(self):
        assert recall_at_k(["a", "b"], {}, 5) is None

    def test_zero_grades_are_not_relevant(self):
        assert recall_at_k(["a"], {"a": 0.0}, 5) is None

    def test_duplicates_count_once(self):
        # "a" repeated does not push "b" past the cutoff credit-wise:
        # deduped ranking is [a, b], both relevant items in the top 2.
        assert recall_at_k(["a", "a", "b"], {"a": 1.0, "b": 1.0}, 2) == 1.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            recall_at_k(["a"], REL, 0)


class TestReciprocalRank:
    def test_hit_at_one(self):
        assert reciprocal_rank_graded(["a", "x"], REL) == 1.0

    def test_hit_at_three(self):
        assert reciprocal_rank_graded(["x", "y", "c"], REL) == pytest.approx(1 / 3)

    def test_grades_binarize(self):
        # MRR is binary: the grade-1 "c" at rank 1 beats grade-3 "a" later.
        assert reciprocal_rank_graded(["c", "a"], REL) == 1.0

    def test_no_hit_scores_zero(self):
        assert reciprocal_rank_graded(["x", "y"], REL) == 0.0

    def test_empty_results_score_zero(self):
        assert reciprocal_rank_graded([], REL) == 0.0

    def test_missing_goldens_undefined(self):
        assert reciprocal_rank_graded(["x"], {}) is None

    def test_duplicates_keep_best_rank(self):
        # Dedupe keeps first occurrences: ["x", "x", "a"] -> ["x", "a"],
        # so "a" is at rank 2, not 3.
        assert reciprocal_rank_graded(["x", "x", "a"], REL) == 0.5


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_k(["a", "b", "c"], REL, 3) == pytest.approx(1.0)

    def test_hand_computed_swap(self):
        # Ranking [b, a]: DCG = (2^2-1)/log2(3) + (2^3-1)/log2(4)... wait,
        # positions are 0-based: gain b at pos 0 -> /log2(2), a at pos 1
        # -> /log2(3).  Ideal [a(3), b(2), c(1)].
        dcg = (2**2 - 1) / math.log2(2) + (2**3 - 1) / math.log2(3)
        ideal = (
            (2**3 - 1) / math.log2(2)
            + (2**2 - 1) / math.log2(3)
            + (2**1 - 1) / math.log2(4)
        )
        assert ndcg_at_k(["b", "a"], REL, 3) == pytest.approx(dcg / ideal)

    def test_graded_relevance_prefers_high_grades_first(self):
        best_first = ndcg_at_k(["a", "b", "c"], REL, 3)
        worst_first = ndcg_at_k(["c", "b", "a"], REL, 3)
        assert best_first > worst_first > 0.0

    def test_ties_cost_nothing(self):
        rel = {"a": 2.0, "b": 2.0}
        assert ndcg_at_k(["a", "b"], rel, 2) == pytest.approx(1.0)
        assert ndcg_at_k(["b", "a"], rel, 2) == pytest.approx(1.0)

    def test_empty_results_score_zero(self):
        assert ndcg_at_k([], REL, 3) == 0.0

    def test_missing_goldens_undefined(self):
        assert ndcg_at_k(["a"], {}, 3) is None

    def test_irrelevant_items_dilute(self):
        # An irrelevant item at rank 1 pushes every gain one position out.
        assert ndcg_at_k(["x", "a", "b", "c"], REL, 4) < 1.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], REL, 0)


class TestDcg:
    def test_hand_computed(self):
        # gains [3, 1]: (2^3-1)/log2(2) + (2^1-1)/log2(3)
        assert dcg_at_k([3.0, 1.0], 2) == pytest.approx(7.0 + 1.0 / math.log2(3))

    def test_truncates_at_k(self):
        assert dcg_at_k([1.0, 1.0, 99.0], 2) == dcg_at_k([1.0, 1.0], 2)


class TestHelpers:
    def test_dedupe_keeps_first(self):
        assert dedupe_ranked(["b", "a", "b", "c", "a"]) == ["b", "a", "c"]

    def test_mean_skips_undefined(self):
        assert mean_of([1.0, None, 0.0]) == 0.5

    def test_mean_of_all_undefined(self):
        assert mean_of([None, None]) is None

    def test_mean_of_empty(self):
        assert mean_of([]) is None
